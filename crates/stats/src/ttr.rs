//! Time to recovery (TTR), §4 of the paper.
//!
//! > "We define TTR as the time between when the interruption ends and when
//! > the five-second rolling median bitrate reaches the median bitrate
//! > before interruption, also referred to as nominal bitrate."
//!
//! Inputs are a bitrate series in fixed-width bins (from
//! `netsim::trace::BinTrace::series_mbps`), the disruption window, and the
//! bin width.

use vcabench_simcore::{SimDuration, SimTime};

/// Rolling median over a trailing window of `window` samples.
/// Output index i is the median of `xs[i+1-window ..= i]` (short prefix
/// windows use every sample available so the series has the same length).
pub fn rolling_median(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(xs.len());
    for i in 0..xs.len() {
        let lo = (i + 1).saturating_sub(window);
        out.push(crate::summary::median(&xs[lo..=i]));
    }
    out
}

/// Result of a TTR computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ttr {
    /// Median bitrate before the disruption (the nominal bitrate), Mbps.
    pub nominal_mbps: f64,
    /// Time from the end of the disruption until recovery; `None` if the
    /// series never recovers within the measurement.
    pub ttr: Option<SimDuration>,
}

/// Compute TTR per the paper's definition.
///
/// ```
/// use vcabench_simcore::{SimDuration, SimTime};
/// use vcabench_stats::time_to_recovery;
///
/// // 1 Mbps nominal, 30 s crushed to 0.25, instant recovery.
/// let mut series = vec![1.0; 600];
/// series.extend(vec![0.25; 300]);
/// series.extend(vec![1.0; 600]);
/// let r = time_to_recovery(
///     &series,
///     SimDuration::from_millis(100),
///     SimTime::from_secs(60),
///     SimTime::from_secs(90),
/// );
/// assert!((r.nominal_mbps - 1.0).abs() < 1e-9);
/// assert!(r.ttr.unwrap().as_secs_f64() < 3.0);
/// ```
///
/// * `series` — bitrate per bin, Mbps, covering the whole call.
/// * `bin` — bin width of the series.
/// * `disruption_start` / `disruption_end` — the shaped window.
/// * `settle` — samples at the very start of the call to skip when computing
///   the nominal bitrate (ramp-up); the paper starts calls a minute before
///   disrupting, we skip the first quarter of the pre-disruption window.
pub fn time_to_recovery(
    series: &[f64],
    bin: SimDuration,
    disruption_start: SimTime,
    disruption_end: SimTime,
) -> Ttr {
    let bin_us = bin.as_micros();
    let start_idx = (disruption_start.as_micros() / bin_us) as usize;
    let end_idx = (disruption_end.as_micros() / bin_us) as usize;
    let settle = start_idx / 4;
    let pre = &series[settle.min(start_idx)..start_idx.min(series.len())];
    let nominal = crate::summary::median(pre);

    // Five-second rolling median, evaluated from the end of the disruption.
    // Recovery is declared at 97% of nominal: medians of two steady windows
    // of the same process differ by a few percent, and an exact-crossing
    // rule would report tens of seconds of phantom recovery time.
    let window = ((5_000_000 / bin_us) as usize).max(1);
    let rolled = rolling_median(series, window);
    let recovered_at = rolled
        .iter()
        .enumerate()
        .skip(end_idx)
        .find(|(_, &v)| v >= 0.97 * nominal)
        .map(|(i, _)| SimTime::from_micros(i as u64 * bin_us));

    Ttr {
        nominal_mbps: nominal,
        ttr: recovered_at.map(|t| t.saturating_since(disruption_end)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_median_basics() {
        let xs = [1.0, 9.0, 1.0, 9.0, 1.0];
        let r = rolling_median(&xs, 3);
        assert_eq!(r.len(), xs.len());
        assert_eq!(r[0], 1.0);
        assert_eq!(r[2], 1.0); // median(1,9,1)
        assert_eq!(r[3], 9.0); // median(9,1,9)
    }

    #[test]
    fn rolling_median_window_one_is_identity() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(rolling_median(&xs, 1), xs.to_vec());
    }

    fn synthetic(recovery_bins: usize) -> Vec<f64> {
        // 100 ms bins: 60 s nominal at 1.0, 30 s disrupted at 0.25,
        // `recovery_bins` of linear ramp, then nominal again out to 300 s.
        let mut s = vec![1.0; 600];
        s.extend(vec![0.25; 300]);
        for i in 0..recovery_bins {
            s.push(0.25 + 0.75 * (i as f64 + 1.0) / recovery_bins as f64);
        }
        while s.len() < 3000 {
            s.push(1.0);
        }
        s
    }

    #[test]
    fn ttr_detects_recovery_point() {
        let bin = SimDuration::from_millis(100);
        let series = synthetic(200); // 20 s ramp
        let r = time_to_recovery(&series, bin, SimTime::from_secs(60), SimTime::from_secs(90));
        assert!((r.nominal_mbps - 1.0).abs() < 1e-9);
        let ttr = r.ttr.expect("must recover").as_secs_f64();
        // The 5-second rolling median reaches nominal a little after the ramp
        // tops out (~20 s) because the window still contains ramp samples.
        assert!((20.0..=26.0).contains(&ttr), "ttr={ttr}");
    }

    #[test]
    fn ttr_longer_ramp_longer_ttr() {
        let bin = SimDuration::from_millis(100);
        let fast = time_to_recovery(
            &synthetic(50),
            bin,
            SimTime::from_secs(60),
            SimTime::from_secs(90),
        );
        let slow = time_to_recovery(
            &synthetic(400),
            bin,
            SimTime::from_secs(60),
            SimTime::from_secs(90),
        );
        assert!(slow.ttr.unwrap() > fast.ttr.unwrap());
    }

    #[test]
    fn ttr_never_recovers() {
        let bin = SimDuration::from_millis(100);
        let mut series = vec![1.0; 600];
        series.extend(vec![0.2; 1000]);
        let r = time_to_recovery(&series, bin, SimTime::from_secs(60), SimTime::from_secs(90));
        assert_eq!(r.ttr, None);
    }

    #[test]
    fn instant_recovery_is_zero_ish() {
        let bin = SimDuration::from_millis(100);
        // Recovery is instantaneous at disruption end; rolling median needs
        // half a window of good samples to flip back.
        let mut series = vec![1.0; 600];
        series.extend(vec![0.25; 300]);
        series.extend(vec![1.0; 1000]);
        let r = time_to_recovery(&series, bin, SimTime::from_secs(60), SimTime::from_secs(90));
        let ttr = r.ttr.unwrap().as_secs_f64();
        assert!(ttr <= 3.0, "ttr={ttr}");
    }
}
