//! Link-share metrics for the competition experiments (§5).
//!
//! With two applications on one bottleneck the paper uses the proportion of
//! the link used by each as the fairness metric, calling an application
//! "aggressive" if it takes more than half under competition.

/// Fraction of the combined throughput taken by `a` (0.0 if both are idle).
pub fn share_of(a_bytes: u64, b_bytes: u64) -> f64 {
    let total = a_bytes + b_bytes;
    if total == 0 {
        0.0
    } else {
        a_bytes as f64 / total as f64
    }
}

/// Fraction of configured capacity used by a flow (utilization).
pub fn utilization(bytes: u64, window_secs: f64, capacity_mbps: f64) -> f64 {
    if window_secs <= 0.0 || capacity_mbps <= 0.0 {
        return 0.0;
    }
    (bytes as f64 * 8.0 / window_secs / 1e6) / capacity_mbps
}

/// Per-bin share series of `a` against `b` (bins where both are zero yield 0).
pub fn share_series(a_mbps: &[f64], b_mbps: &[f64]) -> Vec<f64> {
    let n = a_mbps.len().max(b_mbps.len());
    (0..n)
        .map(|i| {
            let a = a_mbps.get(i).copied().unwrap_or(0.0);
            let b = b_mbps.get(i).copied().unwrap_or(0.0);
            if a + b == 0.0 {
                0.0
            } else {
                a / (a + b)
            }
        })
        .collect()
}

/// Jain's fairness index over per-flow throughputs (1.0 = perfectly fair).
pub fn jain_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sum_sq: f64 = rates.iter().map(|r| r * r).sum();
    if sum_sq == 0.0 {
        1.0
    } else {
        sum * sum / (rates.len() as f64 * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_of_basics() {
        assert_eq!(share_of(75, 25), 0.75);
        assert_eq!(share_of(0, 0), 0.0);
        assert_eq!(share_of(10, 0), 1.0);
    }

    #[test]
    fn utilization_computes_fraction() {
        // 125_000 bytes over 1 s = 1 Mbps; on a 2 Mbps link → 0.5.
        assert!((utilization(125_000, 1.0, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(utilization(1, 0.0, 2.0), 0.0);
    }

    #[test]
    fn share_series_elementwise() {
        let s = share_series(&[1.0, 3.0, 0.0], &[1.0, 1.0, 0.0]);
        assert_eq!(s, vec![0.5, 0.75, 0.0]);
    }

    #[test]
    fn share_series_handles_length_mismatch() {
        let s = share_series(&[1.0], &[1.0, 2.0]);
        assert_eq!(s, vec![0.5, 0.0]);
    }

    #[test]
    fn jain_extremes() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skew = jain_index(&[1.0, 0.0, 0.0]);
        assert!((skew - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }
}
