//! Summary statistics used throughout the paper's plots: medians, means,
//! percentiles, 90 % confidence intervals (the shaded bands of Figs 1–3, 15),
//! and box-plot five-number summaries (Figs 8, 10, 12).

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator). Returns 0.0 for n < 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Linear-interpolated percentile, `p` in `[0, 100]`. Returns 0.0 for empty.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in data"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Mean with a 90 % confidence interval (normal approximation,
/// z = 1.645), matching the paper's shaded bands across repeated runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (mean).
    pub mean: f64,
    /// Lower bound of the 90 % CI.
    pub lo: f64,
    /// Upper bound of the 90 % CI.
    pub hi: f64,
}

/// 90 % confidence interval on the mean of `xs`.
pub fn ci90(xs: &[f64]) -> ConfidenceInterval {
    let m = mean(xs);
    if xs.len() < 2 {
        return ConfidenceInterval {
            mean: m,
            lo: m,
            hi: m,
        };
    }
    let half = 1.645 * std_dev(xs) / (xs.len() as f64).sqrt();
    ConfidenceInterval {
        mean: m,
        lo: m - half,
        hi: m + half,
    }
}

/// Five-number summary for a box plot (Tukey whiskers at 1.5 IQR, clamped to
/// the data range).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Lower whisker.
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker.
    pub whisker_hi: f64,
}

/// Compute box-plot statistics. Returns all-zero stats for an empty slice.
pub fn box_stats(xs: &[f64]) -> BoxStats {
    if xs.is_empty() {
        return BoxStats {
            whisker_lo: 0.0,
            q1: 0.0,
            median: 0.0,
            q3: 0.0,
            whisker_hi: 0.0,
        };
    }
    let q1 = percentile(xs, 25.0);
    let q2 = percentile(xs, 50.0);
    let q3 = percentile(xs, 75.0);
    let iqr = q3 - q1;
    let lo_fence = q1 - 1.5 * iqr;
    let hi_fence = q3 + 1.5 * iqr;
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    // Whiskers reach to the most extreme data point inside the fences, but
    // never retract past the box itself (interpolated quartiles can fall
    // below every retained datum).
    let whisker_lo = xs
        .iter()
        .cloned()
        .filter(|&x| x >= lo_fence)
        .fold(f64::INFINITY, f64::min)
        .max(min)
        .min(q1);
    let whisker_hi = xs
        .iter()
        .cloned()
        .filter(|&x| x <= hi_fence)
        .fold(f64::NEG_INFINITY, f64::max)
        .min(max)
        .max(q3);
    BoxStats {
        whisker_lo,
        q1,
        median: q2,
        q3,
        whisker_hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138).abs() < 0.01);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_odd_is_exact() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[42.0]), 42.0);
    }

    #[test]
    fn ci90_contains_mean_and_shrinks_with_n() {
        let few = [1.0, 2.0, 3.0];
        let many: Vec<f64> = (0..300).map(|i| (i % 3) as f64 + 1.0).collect();
        let a = ci90(&few);
        let b = ci90(&many);
        assert!(a.lo <= a.mean && a.mean <= a.hi);
        assert!((a.mean - 2.0).abs() < 1e-12);
        assert!((b.hi - b.lo) < (a.hi - a.lo), "CI must shrink with n");
    }

    #[test]
    fn ci90_degenerate() {
        let one = ci90(&[7.0]);
        assert_eq!((one.lo, one.mean, one.hi), (7.0, 7.0, 7.0));
    }

    #[test]
    fn box_stats_ordering() {
        let xs: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let b = box_stats(&xs);
        assert!(b.whisker_lo <= b.q1 && b.q1 <= b.median);
        assert!(b.median <= b.q3 && b.q3 <= b.whisker_hi);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 100.0);
    }

    #[test]
    fn box_stats_excludes_outliers_from_whiskers() {
        let mut xs: Vec<f64> = (1..=20).map(|x| x as f64).collect();
        xs.push(1000.0); // extreme outlier
        let b = box_stats(&xs);
        assert!(b.whisker_hi < 1000.0, "outlier must not extend whisker");
    }
}
