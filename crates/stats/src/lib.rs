//! # vcabench-stats
//!
//! Measurement statistics matching the paper's analysis: summary statistics
//! with 90 % confidence intervals, box-plot five-number summaries, the §4
//! time-to-recovery metric (five-second rolling median vs. nominal bitrate),
//! and §5 link-share/fairness metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod share;
pub mod summary;
pub mod ttr;

pub use share::{jain_index, share_of, share_series, utilization};
pub use summary::{
    box_stats, ci90, mean, median, percentile, std_dev, BoxStats, ConfidenceInterval,
};
pub use ttr::{rolling_median, time_to_recovery, Ttr};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Median is always within [min, max] and percentiles are monotone.
        #[test]
        fn percentiles_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let p10 = percentile(&xs, 10.0);
            let p50 = percentile(&xs, 50.0);
            let p90 = percentile(&xs, 90.0);
            prop_assert!(p10 <= p50 && p50 <= p90);
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p50 >= min && p50 <= max);
        }

        /// The 90% CI always contains the mean and is symmetric around it.
        #[test]
        fn ci_contains_mean(xs in proptest::collection::vec(-1e3f64..1e3, 2..100)) {
            let ci = ci90(&xs);
            prop_assert!(ci.lo <= ci.mean + 1e-9 && ci.mean <= ci.hi + 1e-9);
            prop_assert!(((ci.mean - ci.lo) - (ci.hi - ci.mean)).abs() < 1e-9);
        }

        /// Box stats are always ordered.
        #[test]
        fn box_stats_ordered(xs in proptest::collection::vec(0f64..1e3, 1..200)) {
            let b = box_stats(&xs);
            prop_assert!(b.whisker_lo <= b.q1 + 1e-9);
            prop_assert!(b.q1 <= b.median + 1e-9);
            prop_assert!(b.median <= b.q3 + 1e-9);
            prop_assert!(b.q3 <= b.whisker_hi + 1e-9);
        }

        /// Rolling median output is bounded by the window's min/max.
        #[test]
        fn rolling_median_bounded(
            xs in proptest::collection::vec(0f64..100.0, 1..100),
            w in 1usize..20,
        ) {
            let r = rolling_median(&xs, w);
            prop_assert_eq!(r.len(), xs.len());
            for (i, &v) in r.iter().enumerate() {
                let lo = (i + 1).saturating_sub(w);
                let win = &xs[lo..=i];
                let min = win.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = win.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
            }
        }

        /// Shares always sum to 1 when traffic exists.
        #[test]
        fn shares_sum_to_one(a in 1u64..1_000_000, b in 1u64..1_000_000) {
            let s = share_of(a, b) + share_of(b, a);
            prop_assert!((s - 1.0).abs() < 1e-12);
        }

        /// Jain's index is in (0, 1].
        #[test]
        fn jain_in_range(rates in proptest::collection::vec(0f64..1e3, 1..20)) {
            let j = jain_index(&rates);
            prop_assert!(j > 0.0 && j <= 1.0 + 1e-12);
        }
    }
}
