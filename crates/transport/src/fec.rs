//! Forward error correction model.
//!
//! Zoom protects media with FEC, reportedly generated at the relay server
//! (the paper cites a Zoom patent and Nistico et al.), and the §3.1
//! sent/received asymmetry is attributed to this server-added redundancy.
//! We model FEC at the block level: for every block of `k` media packets the
//! protector adds `r` repair packets; up to `r` losses within the block are
//! recoverable.

/// FEC block configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FecParams {
    /// Media packets per block.
    pub k: u32,
    /// Repair packets per block.
    pub r: u32,
}

impl FecParams {
    /// Parameters from a redundancy ratio (repair bytes / media bytes),
    /// using blocks of 10 media packets.
    pub fn from_ratio(ratio: f64) -> Self {
        let k = 10u32;
        let r = (ratio * k as f64).round().max(0.0) as u32;
        FecParams { k, r }
    }

    /// Redundancy overhead ratio r/k.
    pub fn ratio(&self) -> f64 {
        if self.k == 0 {
            0.0
        } else {
            self.r as f64 / self.k as f64
        }
    }

    /// Given `lost` media losses in a block with `repair_lost` repair
    /// losses, how many media packets are recovered? (An (k+r, k) code
    /// recovers all media iff total losses ≤ r.)
    pub fn recovered(&self, media_lost: u32, repair_lost: u32) -> u32 {
        if media_lost + repair_lost <= self.r {
            media_lost
        } else {
            0
        }
    }

    /// Expected fraction of media loss repaired at independent random loss
    /// probability `p` (analytic, used by coarse models and tests).
    pub fn expected_recovery_fraction(&self, p: f64) -> f64 {
        if self.r == 0 || p <= 0.0 {
            return if p <= 0.0 { 1.0 } else { 0.0 };
        }
        // Probability that a block with ≥1 media loss has total losses ≤ r,
        // approximated by Monte-Carlo-free binomial tail on the block.
        let n = self.k + self.r;
        // P(total losses ≤ r)
        let mut cum = 0.0;
        for i in 0..=self.r {
            cum += binom_pmf(n, i, p);
        }
        cum.clamp(0.0, 1.0)
    }
}

fn binom_pmf(n: u32, k: u32, p: f64) -> f64 {
    let mut c = 1.0f64;
    for i in 0..k {
        c = c * (n - i) as f64 / (i + 1) as f64;
    }
    c * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_round_trip() {
        let f = FecParams::from_ratio(0.2);
        assert_eq!(f.k, 10);
        assert_eq!(f.r, 2);
        assert!((f.ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn recovery_within_budget() {
        let f = FecParams { k: 10, r: 2 };
        assert_eq!(f.recovered(1, 0), 1);
        assert_eq!(f.recovered(2, 0), 2);
        assert_eq!(f.recovered(1, 1), 1);
        assert_eq!(f.recovered(3, 0), 0, "beyond repair budget");
        assert_eq!(f.recovered(1, 2), 0);
    }

    #[test]
    fn expected_recovery_monotone_in_ratio() {
        let lo = FecParams::from_ratio(0.1).expected_recovery_fraction(0.05);
        let hi = FecParams::from_ratio(0.5).expected_recovery_fraction(0.05);
        assert!(hi > lo, "more redundancy recovers more: {lo} vs {hi}");
    }

    #[test]
    fn expected_recovery_extremes() {
        let f = FecParams::from_ratio(0.2);
        assert_eq!(f.expected_recovery_fraction(0.0), 1.0);
        assert!(f.expected_recovery_fraction(0.9) < 0.01);
        let none = FecParams { k: 10, r: 0 };
        assert_eq!(none.expected_recovery_fraction(0.1), 0.0);
    }

    #[test]
    fn binom_pmf_sums_to_one() {
        let n = 12;
        let p = 0.3;
        let total: f64 = (0..=n).map(|k| binom_pmf(n, k, p)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
