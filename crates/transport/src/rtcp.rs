//! RTCP control messages: receiver reports and Full Intra Requests.
//!
//! RTCP shares performance statistics and control information during a call
//! (§2.1). Two message types matter for the paper's measurements:
//!
//! * **Receiver reports** carry the loss/delay/rate feedback the senders'
//!   congestion controllers consume (every VCA has some variant of this);
//! * **FIR (Full Intra Request)** is sent when the receiver cannot decode —
//!   the paper uses the FIR count as its proxy for upstream-direction video
//!   freezes (Fig 3b).

use vcabench_simcore::SimTime;

/// Feedback payload of a receiver report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverReport {
    /// SSRC being reported on.
    pub ssrc: u32,
    /// Loss fraction since the last report, `[0, 1]`.
    pub loss_fraction: f64,
    /// Receiver-measured delivery rate over the interval, Mbps.
    pub receive_rate_mbps: f64,
    /// Mean relative one-way delay over the interval, ms.
    pub one_way_delay_ms: f64,
    /// Round-trip time estimate, ms.
    pub rtt_ms: f64,
    /// Fraction of lost packets recovered by FEC.
    pub fec_recovered_fraction: f64,
    /// Receiver's bandwidth estimate for this path, Mbps (REMB-style);
    /// `None` when the receiver does not estimate.
    pub remb_mbps: Option<f64>,
    /// Largest video width (pixels) any subscriber currently wants from the
    /// report's recipient — how the SFU communicates layout-driven
    /// resolution demand back to senders (§6).
    pub max_requested_width: u32,
    /// Number of clients in the call (lets senders implement call-size
    /// dependent behaviour such as Teams' pinned-uplink growth, Fig 15c).
    pub call_size: u32,
}

/// An RTCP message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtcpPacket {
    /// Periodic receiver report.
    Report(ReceiverReport),
    /// Full Intra Request: the receiver needs a keyframe to resume decoding.
    Fir {
        /// SSRC the request applies to.
        ssrc: u32,
        /// When the receiver issued the request.
        issued_at: SimTime,
    },
    /// Negative acknowledgement: ask for retransmission of one packet.
    /// Handled by the SFU (which rewrites sequence numbers and keeps a short
    /// retransmission buffer per subscriber), as real SFUs do.
    Nack {
        /// SSRC of the stream with the gap.
        ssrc: u32,
        /// Missing (egress) sequence number.
        seq: u64,
    },
}

impl RtcpPacket {
    /// On-wire size of the message, bytes (header + report block + UDP/IP).
    pub fn wire_size(&self) -> usize {
        match self {
            RtcpPacket::Report(_) => 96,
            RtcpPacket::Fir { .. } => 48,
            RtcpPacket::Nack { .. } => 44,
        }
    }
}

/// Tracks FIR issuance with a hold-off so a stalled receiver does not flood
/// the sender (WebRTC enforces a similar minimum spacing).
#[derive(Debug, Clone)]
pub struct FirTracker {
    last_sent: Option<SimTime>,
    holdoff: vcabench_simcore::SimDuration,
    /// Total FIRs issued (the Fig 3b metric).
    pub count: u64,
}

impl FirTracker {
    /// Tracker with the given minimum spacing between FIRs.
    pub fn new(holdoff: vcabench_simcore::SimDuration) -> Self {
        FirTracker {
            last_sent: None,
            holdoff,
            count: 0,
        }
    }

    /// Request a FIR at `now`; returns the message if the hold-off allows it.
    pub fn request(&mut self, now: SimTime, ssrc: u32) -> Option<RtcpPacket> {
        let allowed = self
            .last_sent
            .map(|t| now.saturating_since(t) >= self.holdoff)
            .unwrap_or(true);
        if allowed {
            self.last_sent = Some(now);
            self.count += 1;
            Some(RtcpPacket::Fir {
                ssrc,
                issued_at: now,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcabench_simcore::SimDuration;

    #[test]
    fn wire_sizes_are_plausible() {
        let rr = RtcpPacket::Report(ReceiverReport {
            ssrc: 1,
            loss_fraction: 0.0,
            receive_rate_mbps: 1.0,
            one_way_delay_ms: 20.0,
            rtt_ms: 40.0,
            fec_recovered_fraction: 0.0,
            remb_mbps: None,
            max_requested_width: 1280,
            call_size: 2,
        });
        assert!(rr.wire_size() > 40 && rr.wire_size() < 200);
        let fir = RtcpPacket::Fir {
            ssrc: 1,
            issued_at: SimTime::ZERO,
        };
        assert!(fir.wire_size() > 40 && fir.wire_size() < 100);
    }

    #[test]
    fn fir_holdoff_suppresses_floods() {
        let mut t = FirTracker::new(SimDuration::from_millis(500));
        assert!(t.request(SimTime::from_millis(0), 1).is_some());
        assert!(t.request(SimTime::from_millis(100), 1).is_none());
        assert!(t.request(SimTime::from_millis(499), 1).is_none());
        assert!(t.request(SimTime::from_millis(500), 1).is_some());
        assert_eq!(t.count, 2);
    }
}
