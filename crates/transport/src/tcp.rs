//! TCP with CUBIC congestion control.
//!
//! The competition experiments (§5) pit the VCAs against a long iPerf3 TCP
//! flow ("The iPerf3 server uses TCP CUBIC"), against Netflix (many parallel
//! TCP connections), and against YouTube (QUIC, which the referenced study
//! shows behaves CUBIC-like for fairness purposes). This module implements
//! the sender ([`Connection`]) and receiver ([`TcpReceiver`]) halves as pure
//! state machines: the owning simulation agent moves [`SendAction`]s and
//! acks across the network and calls [`Connection::poll`] on a timer.
//!
//! Loss recovery is deliberately simple but faithful in its dynamics:
//! slow start, CUBIC congestion avoidance (with the TCP-friendly region),
//! fast retransmit on three duplicate ACKs (window ×0.7), and go-back-N on
//! retransmission timeout (window to 1 MSS, exponential RTO backoff).

use std::collections::BTreeMap;

use vcabench_simcore::{SimDuration, SimTime};

/// Congestion-avoidance algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAlgo {
    /// CUBIC (RFC 8312): default for iPerf3/Netflix/YouTube models.
    Cubic,
    /// Classic Reno AIMD (used in unit tests and ablations).
    Reno,
}

/// Connection configuration.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size, payload bytes.
    pub mss: usize,
    /// Initial congestion window, segments.
    pub init_cwnd: f64,
    /// Minimum retransmission timeout.
    pub min_rto: SimDuration,
    /// Congestion-avoidance algorithm.
    pub algo: CcAlgo,
    /// CUBIC β (multiplicative decrease factor).
    pub beta: f64,
    /// CUBIC C (aggressiveness constant).
    pub cubic_c: f64,
    /// Initial slow-start threshold, segments. Modern stacks bound the
    /// initial exponential burst (route caching / HyStart); unbounded slow
    /// start overshoots drop-tail queues by a whole window and the cumulative
    /// -ACK recovery here (no SACK) pays one RTT per lost segment.
    pub init_ssthresh: f64,
    /// Consecutive holes retransmitted per partial ACK during recovery — a
    /// cumulative-ACK approximation of SACK-based loss recovery.
    pub recovery_burst: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1200,
            init_cwnd: 10.0,
            // 300 ms rather than Linux's 200 ms: the simulated access queues
            // can add >200 ms of bloat within one RTT of slow-start
            // overshoot, which would fire spurious timeouts before the RTT
            // estimator catches up (real stacks mitigate this with F-RTO).
            min_rto: SimDuration::from_millis(300),
            algo: CcAlgo::Cubic,
            beta: 0.7,
            cubic_c: 0.4,
            init_ssthresh: 45.0,
            recovery_burst: 4,
        }
    }
}

/// A segment the connection wants transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendAction {
    /// First byte offset of the segment.
    pub seq: u64,
    /// Payload length, bytes.
    pub len: usize,
    /// True when this is a retransmission.
    pub retransmit: bool,
}

/// Lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Fast retransmits triggered.
    pub fast_retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Total segments emitted (including retransmissions).
    pub segments_sent: u64,
}

/// Sender half of a TCP connection.
///
/// ```
/// use vcabench_simcore::SimTime;
/// use vcabench_transport::tcp::{Connection, TcpConfig, TcpReceiver};
///
/// let mut tx = Connection::new(TcpConfig::default(), Some(30_000));
/// let mut rx = TcpReceiver::new();
/// let mut now = SimTime::ZERO;
/// let mut wire = tx.poll(now);
/// while !tx.done() {
///     now = now + vcabench_simcore::SimDuration::from_millis(20);
///     let acks: Vec<u64> = wire.drain(..).map(|s| rx.on_segment(s.seq, s.len)).collect();
///     for a in acks {
///         wire.extend(tx.on_ack(now, a));
///     }
///     wire.extend(tx.poll(now));
/// }
/// assert_eq!(rx.bytes_received, 30_000);
/// ```
#[derive(Debug, Clone)]
pub struct Connection {
    cfg: TcpConfig,
    /// Next never-sent byte.
    next_new_seq: u64,
    /// Lowest unacknowledged byte.
    snd_una: u64,
    /// Total bytes the application will send (`None` = unbounded, iPerf3).
    app_total: Option<u64>,
    /// Congestion window, segments.
    cwnd: f64,
    ssthresh: f64,
    // CUBIC state.
    w_max: f64,
    epoch_start: Option<SimTime>,
    // RTT estimation (RFC 6298).
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimDuration,
    rto_backoff: u32,
    /// In-flight segments: seq → (len, time sent, was retransmitted).
    sent: BTreeMap<u64, (usize, SimTime, bool)>,
    dup_acks: u32,
    /// In fast recovery until `snd_una` passes this sequence.
    recovery_end: Option<u64>,
    /// Lifetime counters.
    pub stats: TcpStats,
}

impl Connection {
    /// New connection. `app_total` bounds the bytes to send (None = endless).
    pub fn new(cfg: TcpConfig, app_total: Option<u64>) -> Self {
        let cwnd = cfg.init_cwnd;
        let ssthresh = cfg.init_ssthresh;
        Connection {
            cfg,
            next_new_seq: 0,
            snd_una: 0,
            app_total,
            cwnd,
            ssthresh,
            w_max: 0.0,
            epoch_start: None,
            srtt: None,
            rttvar: 0.0,
            rto: SimDuration::from_millis(1000),
            rto_backoff: 0,
            sent: BTreeMap::new(),
            dup_acks: 0,
            recovery_end: None,
            stats: TcpStats::default(),
        }
    }

    /// Add more application bytes to a bounded connection.
    pub fn enqueue(&mut self, bytes: u64) {
        if let Some(t) = self.app_total.as_mut() {
            *t += bytes;
        }
    }

    /// Congestion window in segments (diagnostics).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Bytes acknowledged so far.
    pub fn bytes_acked(&self) -> u64 {
        self.snd_una
    }

    /// True once every application byte is acknowledged.
    pub fn done(&self) -> bool {
        self.app_total == Some(self.snd_una)
    }

    /// True when the peer has stopped responding (successive exponential
    /// RTO backoffs exhausted) — the sender should tear the connection down
    /// rather than retransmit forever (an abandoned Netflix range request).
    pub fn abandoned(&self) -> bool {
        self.rto_backoff >= 6
    }

    /// Smoothed RTT estimate, if measured.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(SimDuration::from_secs_f64)
    }

    /// MSS in bytes.
    pub fn mss(&self) -> usize {
        self.cfg.mss
    }

    fn in_flight_segments(&self) -> f64 {
        self.sent.len() as f64
    }

    fn available_bytes(&self) -> u64 {
        match self.app_total {
            Some(total) => total.saturating_sub(self.next_new_seq),
            None => u64::MAX,
        }
    }

    fn update_rtt(&mut self, sample_s: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample_s);
                self.rttvar = sample_s / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - sample_s).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * sample_s);
            }
        }
        let rto_s = self.srtt.unwrap() + 4.0 * self.rttvar;
        self.rto = SimDuration::from_secs_f64(rto_s)
            .max(self.cfg.min_rto)
            .min(SimDuration::from_secs(60));
        self.rto_backoff = 0;
    }

    fn cubic_k(&self) -> f64 {
        (self.w_max * (1.0 - self.cfg.beta) / self.cfg.cubic_c).cbrt()
    }

    fn grow_window(&mut self, now: SimTime, acked_segments: f64) {
        if self.recovery_end.is_some() {
            return; // no growth during fast recovery
        }
        if self.cwnd < self.ssthresh {
            // Slow start, capped at ssthresh.
            self.cwnd = (self.cwnd + acked_segments).min(self.ssthresh);
            return;
        }
        match self.cfg.algo {
            CcAlgo::Reno => {
                self.cwnd += acked_segments / self.cwnd;
            }
            CcAlgo::Cubic => {
                let epoch = *self.epoch_start.get_or_insert(now);
                let srtt = self.srtt.unwrap_or(0.1);
                let t = now.saturating_since(epoch).as_secs_f64() + srtt;
                let k = self.cubic_k();
                let w_cubic = self.cfg.cubic_c * (t - k).powi(3) + self.w_max;
                // TCP-friendly region (RFC 8312 §4.2).
                let w_est = self.w_max * self.cfg.beta
                    + 3.0 * (1.0 - self.cfg.beta) / (1.0 + self.cfg.beta) * (t / srtt);
                let target = w_cubic.max(w_est);
                if target > self.cwnd {
                    self.cwnd += (target - self.cwnd) / self.cwnd * acked_segments;
                } else {
                    self.cwnd += 0.01 * acked_segments / self.cwnd;
                }
            }
        }
        self.cwnd = self.cwnd.min(10_000.0);
    }

    fn enter_loss_recovery(&mut self, now: SimTime) {
        self.w_max = self.cwnd;
        self.ssthresh = (self.cwnd * self.cfg.beta).max(2.0);
        self.cwnd = self.ssthresh;
        self.epoch_start = None;
        self.recovery_end = Some(self.next_new_seq);
        self.stats.fast_retransmits += 1;
        let _ = now;
    }

    /// Process a cumulative acknowledgement. Returns segments to transmit.
    pub fn on_ack(&mut self, now: SimTime, ack: u64) -> Vec<SendAction> {
        let mut out = Vec::new();
        if ack > self.snd_una {
            // New data acknowledged.
            let mut acked_segments = 0.0;
            let acked_keys: Vec<u64> = self.sent.range(..ack).map(|(&s, _)| s).collect();
            let mut rtt_sample: Option<f64> = None;
            for k in acked_keys {
                if let Some((_, sent_at, retx)) = self.sent.remove(&k) {
                    acked_segments += 1.0;
                    if !retx {
                        rtt_sample = Some(now.saturating_since(sent_at).as_secs_f64());
                    }
                }
            }
            if let Some(s) = rtt_sample {
                self.update_rtt(s);
            }
            self.snd_una = ack;
            self.dup_acks = 0;
            if let Some(end) = self.recovery_end {
                if ack >= end {
                    self.recovery_end = None;
                } else {
                    // NewReno partial ACK: the following holes are known lost
                    // too. Retransmit a small burst of the oldest unacked
                    // segments (a cumulative-ACK stand-in for SACK recovery)
                    // instead of paying one RTT per hole.
                    let burst: Vec<(u64, usize)> = self
                        .sent
                        .iter()
                        .take(self.cfg.recovery_burst)
                        .map(|(&seq, &(len, _, _))| (seq, len))
                        .collect();
                    for (seq, len) in burst {
                        self.sent.insert(seq, (len, now, true));
                        self.stats.segments_sent += 1;
                        out.push(SendAction {
                            seq,
                            len,
                            retransmit: true,
                        });
                    }
                }
            }
            self.grow_window(now, acked_segments);
        } else if ack == self.snd_una && !self.sent.is_empty() {
            self.dup_acks += 1;
            if self.dup_acks == 3 && self.recovery_end.is_none() {
                self.enter_loss_recovery(now);
                // Retransmit the first unacked segment.
                if let Some((&seq, &(len, _, _))) = self.sent.iter().next() {
                    self.sent.insert(seq, (len, now, true));
                    self.stats.segments_sent += 1;
                    out.push(SendAction {
                        seq,
                        len,
                        retransmit: true,
                    });
                }
            }
        }
        out.extend(self.send_permitted(now));
        out
    }

    /// Periodic maintenance: RTO detection and (re)filling the window.
    /// Call every few milliseconds.
    pub fn poll(&mut self, now: SimTime) -> Vec<SendAction> {
        let mut out = Vec::new();
        if let Some((&_first_seq, &(_, sent_at, _))) = self.sent.iter().next() {
            let effective_rto = self.rto * 2u64.pow(self.rto_backoff.min(6));
            if now.saturating_since(sent_at) >= effective_rto {
                // Timeout: collapse the window and go back N.
                self.stats.timeouts += 1;
                self.w_max = self.cwnd;
                self.ssthresh = (self.cwnd * 0.5).max(2.0);
                self.cwnd = 1.0;
                self.epoch_start = None;
                self.recovery_end = None;
                self.dup_acks = 0;
                self.rto_backoff += 1;
                self.sent.clear();
                self.next_new_seq = self.snd_una;
            }
        }
        out.extend(self.send_permitted(now));
        out
    }

    fn send_permitted(&mut self, now: SimTime) -> Vec<SendAction> {
        let mut out = Vec::new();
        while self.in_flight_segments() < self.cwnd.floor() && self.available_bytes() > 0 {
            let len = (self.cfg.mss as u64).min(self.available_bytes()) as usize;
            let seq = self.next_new_seq;
            self.sent.insert(seq, (len, now, false));
            self.next_new_seq += len as u64;
            self.stats.segments_sent += 1;
            out.push(SendAction {
                seq,
                len,
                retransmit: false,
            });
        }
        out
    }
}

/// Receiver half: cumulative acknowledgements with out-of-order buffering.
#[derive(Debug, Clone, Default)]
pub struct TcpReceiver {
    expected: u64,
    ooo: BTreeMap<u64, usize>,
    /// Total in-order bytes delivered to the application.
    pub bytes_received: u64,
}

impl TcpReceiver {
    /// Fresh receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest a data segment; returns the cumulative ACK to send back.
    pub fn on_segment(&mut self, seq: u64, len: usize) -> u64 {
        if seq + len as u64 > self.expected {
            self.ooo.insert(seq, len);
        }
        // Advance over any now-contiguous buffered segments.
        loop {
            let mut advanced = false;
            let keys: Vec<u64> = self.ooo.range(..=self.expected).map(|(&s, _)| s).collect();
            for k in keys {
                let l = self.ooo.remove(&k).expect("key exists");
                let end = k + l as u64;
                if end > self.expected {
                    self.bytes_received += end - self.expected;
                    self.expected = end;
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
        }
        self.expected
    }

    /// Next expected byte (the cumulative ACK value).
    pub fn expected(&self) -> u64 {
        self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_cumulative_and_ooo() {
        let mut r = TcpReceiver::new();
        assert_eq!(r.on_segment(0, 100), 100);
        assert_eq!(r.on_segment(200, 100), 100, "gap: ack stays");
        assert_eq!(r.on_segment(100, 100), 300, "gap filled: ack jumps");
        assert_eq!(r.bytes_received, 300);
        // Duplicate does nothing.
        assert_eq!(r.on_segment(0, 100), 300);
        assert_eq!(r.bytes_received, 300);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let cfg = TcpConfig::default();
        let mut c = Connection::new(cfg, None);
        let t0 = SimTime::ZERO;
        let first = c.poll(t0);
        assert_eq!(first.len(), 10, "initial window");
        // Ack everything after 50 ms: cwnd should grow by the acked count.
        let acked = first.iter().map(|s| s.len as u64).sum::<u64>();
        let more = c.on_ack(SimTime::from_millis(50), acked);
        assert!(c.cwnd() >= 19.0, "cwnd {}", c.cwnd());
        assert!(more.len() >= 19, "window refill {} segments", more.len());
    }

    #[test]
    fn fast_retransmit_on_three_dupacks() {
        let mut c = Connection::new(TcpConfig::default(), None);
        let t0 = SimTime::ZERO;
        let segs = c.poll(t0);
        assert!(segs.len() >= 4);
        let cwnd_before = c.cwnd();
        // Three duplicate ACKs for seq 0.
        let mut retx = Vec::new();
        for i in 1..=3u64 {
            retx = c.on_ack(SimTime::from_millis(i * 10), 0);
        }
        assert_eq!(c.stats.fast_retransmits, 1);
        assert!(retx.iter().any(|s| s.retransmit && s.seq == 0));
        assert!(c.cwnd() < cwnd_before, "cwnd cut by beta");
        assert!((c.cwnd() - cwnd_before * 0.7).abs() < 1e-6);
    }

    #[test]
    fn rto_collapses_window_and_goes_back_n() {
        let mut c = Connection::new(TcpConfig::default(), None);
        c.poll(SimTime::ZERO);
        // No acks for 5 seconds → timeout.
        let again = c.poll(SimTime::from_secs(5));
        assert_eq!(c.stats.timeouts, 1);
        assert!((c.cwnd() - 1.0).abs() < 1e-9);
        assert_eq!(again.len(), 1, "only one segment in flight after RTO");
        assert_eq!(again[0].seq, 0, "go-back-N restarts at snd_una");
    }

    #[test]
    fn bounded_transfer_completes() {
        let mut c = Connection::new(TcpConfig::default(), Some(5000));
        let mut r = TcpReceiver::new();
        let mut now = SimTime::ZERO;
        let mut to_send = c.poll(now);
        let mut guard = 0;
        while !c.done() {
            guard += 1;
            assert!(guard < 1000, "transfer must terminate");
            now += SimDuration::from_millis(10);
            let mut acks = Vec::new();
            for s in to_send.drain(..) {
                acks.push(r.on_segment(s.seq, s.len));
            }
            let mut next = Vec::new();
            for a in acks {
                next.extend(c.on_ack(now, a));
            }
            next.extend(c.poll(now));
            to_send = next;
        }
        assert_eq!(c.bytes_acked(), 5000);
        assert_eq!(r.bytes_received, 5000);
    }

    #[test]
    fn cubic_window_grows_concave_then_convex() {
        let mut c = Connection::new(TcpConfig::default(), None);
        // Prime: establish an RTT long enough that the cubic region (not the
        // TCP-friendly Reno bound) governs growth, and a known w_max.
        c.poll(SimTime::ZERO);
        c.on_ack(SimTime::from_millis(300), 1200 * 10);
        // Force congestion avoidance with a known w_max.
        c.w_max = 100.0;
        c.ssthresh = 70.0;
        c.cwnd = 70.0;
        c.epoch_start = None;
        let mut deltas = Vec::new();
        let mut prev = c.cwnd();
        for i in 0..200 {
            let now = SimTime::from_millis(100 + i * 100);
            c.grow_window(now, 10.0);
            deltas.push(c.cwnd() - prev);
            prev = c.cwnd();
        }
        // Concave first (slowing into the w_max plateau around t=K≈4.2 s),
        // convex later (accelerating past it).
        let early: f64 = deltas[..10].iter().sum();
        let plateau: f64 = deltas[35..45].iter().sum();
        let late: f64 = deltas[120..130].iter().sum();
        assert!(
            early > plateau,
            "growth slows near w_max: early {early} plateau {plateau}"
        );
        assert!(
            late > plateau,
            "growth accelerates past plateau: late {late} plateau {plateau}"
        );
    }

    #[test]
    fn rtt_estimation_reasonable() {
        let mut c = Connection::new(TcpConfig::default(), None);
        let segs = c.poll(SimTime::ZERO);
        let bytes: u64 = segs.iter().map(|s| s.len as u64).sum();
        c.on_ack(SimTime::from_millis(80), bytes);
        let srtt = c.srtt().expect("measured");
        assert_eq!(srtt.as_millis(), 80);
    }

    #[test]
    fn karn_ignores_retransmitted_samples() {
        let mut c = Connection::new(TcpConfig::default(), None);
        c.poll(SimTime::ZERO);
        for i in 1..=3u64 {
            c.on_ack(SimTime::from_millis(i), 0); // dupacks → retransmit seq 0
        }
        // Ack only the retransmitted segment much later; srtt must not be
        // polluted by the ambiguous sample.
        c.on_ack(SimTime::from_secs(10), 1200);
        assert!(c.srtt().is_none() || c.srtt().unwrap() < SimDuration::from_secs(5));
    }
}
