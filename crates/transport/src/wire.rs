//! The unified on-wire payload type used by every vcabench experiment.
//!
//! `netsim` is generic over its packet payload; everything above it (VCA
//! clients, SFU servers, competing applications) instantiates the network as
//! `Network<Wire>` so RTP media, RTCP control, and TCP segments can share
//! links and queues — which is the whole point of the §5 competition
//! experiments.

use crate::rtcp::RtcpPacket;
use crate::rtp::RtpPacket;

/// Per-packet IP+UDP header overhead, bytes.
pub const UDP_OVERHEAD: usize = 28;
/// Per-packet IP+TCP header overhead, bytes.
pub const TCP_OVERHEAD: usize = 40;

/// A TCP segment (data or pure ACK) on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSegment {
    /// Connection identifier (unique per experiment).
    pub conn: u64,
    /// First payload byte offset (data segments).
    pub seq: u64,
    /// Payload length; 0 for a pure ACK.
    pub len: usize,
    /// Cumulative acknowledgement carried by this segment, if any.
    pub ack: Option<u64>,
}

impl TcpSegment {
    /// On-wire size including headers.
    pub fn wire_size(&self) -> usize {
        self.len + TCP_OVERHEAD
    }
}

/// Application-level signalling carried by [`Wire::Signal`] packets:
/// call setup and layout changes (the work PyAutoGUI did in the paper's lab)
/// plus segment requests for the streaming-application models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalMsg {
    /// A client joins a call.
    Join,
    /// A client announces its viewing layout: `pinned` is the index of the
    /// participant it pinned (speaker mode), or `None` for gallery mode.
    Layout {
        /// Pinned participant index, if any.
        pinned: Option<u32>,
    },
    /// An ABR client requests `bytes` over connection `conn` (Netflix/
    /// YouTube segment fetch).
    SegmentRequest {
        /// Connection id the response should use.
        conn: u64,
        /// Segment size in bytes.
        bytes: u64,
    },
}

/// Union of every protocol the simulation carries.
#[derive(Debug, Clone, PartialEq)]
pub enum Wire {
    /// RTP media.
    Rtp(RtpPacket),
    /// RTCP control.
    Rtcp(RtcpPacket),
    /// TCP segment (iPerf3, Netflix) or QUIC datagram (YouTube — modelled
    /// with the same segment structure; see `apps::youtube`).
    Tcp(TcpSegment),
    /// Application signalling (call setup, segment requests).
    Signal(SignalMsg),
}

impl Wire {
    /// Convenience: is this packet RTP media?
    pub fn is_media(&self) -> bool {
        matches!(self, Wire::Rtp(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_wire_size_includes_headers() {
        let seg = TcpSegment {
            conn: 1,
            seq: 0,
            len: 1200,
            ack: None,
        };
        assert_eq!(seg.wire_size(), 1240);
        let ack = TcpSegment {
            conn: 1,
            seq: 0,
            len: 0,
            ack: Some(1200),
        };
        assert_eq!(ack.wire_size(), 40);
    }

    #[test]
    fn wire_classification() {
        let seg = Wire::Tcp(TcpSegment {
            conn: 0,
            seq: 0,
            len: 0,
            ack: None,
        });
        assert!(!seg.is_media());
        assert!(!Wire::Signal(SignalMsg::Join).is_media());
    }
}
