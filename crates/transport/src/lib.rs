//! # vcabench-transport
//!
//! Transport-layer models for vcabench: RTP media packets and session state,
//! RTCP receiver reports and FIR tracking, a block FEC model, and a TCP
//! implementation with CUBIC congestion control (also reused, with pacing,
//! as the QUIC-like transport for the YouTube model).
//!
//! Everything here is a pure state machine — no I/O, no timers of its own —
//! driven by the simulation agents in `vcabench-vca` and `vcabench-apps`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fec;
pub mod rtcp;
pub mod rtp;
pub mod tcp;
pub mod wire;

pub use fec::FecParams;
pub use rtcp::{FirTracker, ReceiverReport, RtcpPacket};
pub use rtp::{FrameMeta, IntervalStats, Layer, RtpPacket, RtpRecvState, RtpSendState, StreamKind};
pub use tcp::{CcAlgo, Connection, SendAction, TcpConfig, TcpReceiver, TcpStats};
pub use wire::{SignalMsg, TcpSegment, Wire, TCP_OVERHEAD, UDP_OVERHEAD};

#[cfg(test)]
mod closed_loop {
    //! End-to-end sanity: a TCP connection over an in-test bottleneck link
    //! must fill the pipe, recover from loss, and stay stable.

    use super::*;
    use std::collections::VecDeque;
    use vcabench_simcore::{SimDuration, SimTime};

    /// Minimal FIFO bottleneck: serializes at `rate_bps`, queues up to
    /// `queue_bytes`, delivers after `delay`.
    struct Pipe {
        rate_bps: f64,
        delay: SimDuration,
        queue_bytes: usize,
        queued: VecDeque<(SimTime, u64, usize)>, // (ready_at, seq, len)
        busy_until: SimTime,
        backlog: usize,
        pub drops: u64,
    }

    impl Pipe {
        fn new(rate_mbps: f64) -> Self {
            Pipe {
                rate_bps: rate_mbps * 1e6,
                delay: SimDuration::from_millis(10),
                queue_bytes: 32 * 1024,
                queued: VecDeque::new(),
                busy_until: SimTime::ZERO,
                backlog: 0,
                drops: 0,
            }
        }

        fn offer(&mut self, now: SimTime, seq: u64, len: usize, wire: usize) {
            if self.backlog + wire > self.queue_bytes {
                self.drops += 1;
                return;
            }
            self.backlog += wire;
            let start = self.busy_until.max(now);
            let tx = vcabench_simcore::transmission_time(wire, self.rate_bps);
            self.busy_until = start + tx;
            self.queued
                .push_back((self.busy_until + self.delay, seq, len));
        }

        fn deliver_due(&mut self, now: SimTime) -> Vec<(u64, usize)> {
            let mut out = Vec::new();
            while let Some(&(ready, seq, len)) = self.queued.front() {
                if ready <= now {
                    self.queued.pop_front();
                    self.backlog -= len + TCP_OVERHEAD;
                    out.push((seq, len));
                } else {
                    break;
                }
            }
            out
        }
    }

    #[test]
    fn cubic_fills_a_2mbps_pipe() {
        let mut conn = Connection::new(TcpConfig::default(), None);
        let mut recv = TcpReceiver::new();
        let mut pipe = Pipe::new(2.0);
        let mut acks: VecDeque<(SimTime, u64)> = VecDeque::new(); // (arrive, ack)
        let tick = SimDuration::from_millis(5);
        let mut now = SimTime::ZERO;
        let horizon = SimTime::from_secs(30);
        while now < horizon {
            now += tick;
            // Ack channel (no bottleneck, 10 ms delay).
            while let Some(&(t, a)) = acks.front() {
                if t <= now {
                    acks.pop_front();
                    for s in conn.on_ack(now, a) {
                        pipe.offer(now, s.seq, s.len, s.len + TCP_OVERHEAD);
                    }
                } else {
                    break;
                }
            }
            for s in conn.poll(now) {
                pipe.offer(now, s.seq, s.len, s.len + TCP_OVERHEAD);
            }
            for (seq, len) in pipe.deliver_due(now) {
                let ack = recv.on_segment(seq, len);
                acks.push_back((now + SimDuration::from_millis(10), ack));
            }
        }
        let goodput_mbps = recv.bytes_received as f64 * 8.0 / 30.0 / 1e6;
        assert!(
            goodput_mbps > 1.6 && goodput_mbps <= 2.05,
            "goodput {goodput_mbps} Mbps on a 2 Mbps pipe"
        );
        assert!(pipe.drops > 0, "CUBIC must probe into loss");
        assert!(
            conn.stats.fast_retransmits > 0,
            "loss should be recovered via fast retransmit"
        );
        assert!(
            conn.stats.timeouts <= 3,
            "steady state should rarely RTO, got {}",
            conn.stats.timeouts
        );
    }

    #[test]
    fn two_connections_share_a_pipe() {
        // Not a strict fairness theorem — just both must make real progress.
        let mut c1 = Connection::new(TcpConfig::default(), None);
        let mut c2 = Connection::new(TcpConfig::default(), None);
        let mut r1 = TcpReceiver::new();
        let mut r2 = TcpReceiver::new();
        let mut pipe = Pipe::new(2.0);
        // Tag flows by odd/even shifted seq: use conn id in the seq's high bit.
        const F2: u64 = 1 << 60;
        let mut acks: VecDeque<(SimTime, u64, u8)> = VecDeque::new();
        let tick = SimDuration::from_millis(5);
        let mut now = SimTime::ZERO;
        while now < SimTime::from_secs(40) {
            now += tick;
            while let Some(&(t, a, which)) = acks.front() {
                if t > now {
                    break;
                }
                acks.pop_front();
                let outs = if which == 1 {
                    c1.on_ack(now, a)
                } else {
                    c2.on_ack(now, a)
                };
                for s in outs {
                    let tag = if which == 1 { 0 } else { F2 };
                    pipe.offer(now, s.seq | tag, s.len, s.len + TCP_OVERHEAD);
                }
            }
            for s in c1.poll(now) {
                pipe.offer(now, s.seq, s.len, s.len + TCP_OVERHEAD);
            }
            for s in c2.poll(now) {
                pipe.offer(now, s.seq | F2, s.len, s.len + TCP_OVERHEAD);
            }
            for (seq, len) in pipe.deliver_due(now) {
                if seq & F2 == 0 {
                    let ack = r1.on_segment(seq, len);
                    acks.push_back((now + SimDuration::from_millis(10), ack, 1));
                } else {
                    let ack = r2.on_segment(seq & !F2, len);
                    acks.push_back((now + SimDuration::from_millis(10), ack, 2));
                }
            }
        }
        let g1 = r1.bytes_received as f64 * 8.0 / 40.0 / 1e6;
        let g2 = r2.bytes_received as f64 * 8.0 / 40.0 / 1e6;
        assert!(g1 + g2 > 1.5, "combined goodput {g1}+{g2}");
        assert!(g1 > 0.3 && g2 > 0.3, "both progress: {g1} vs {g2}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use vcabench_simcore::SimTime;

    proptest! {
        /// The receiver's cumulative ack never decreases and bytes_received
        /// equals the ack point, for any arrival order of a contiguous
        /// segment sequence.
        #[test]
        fn receiver_ack_monotone(order in proptest::sample::subsequence((0usize..30).collect::<Vec<_>>(), 1..30)) {
            let mut r = TcpReceiver::new();
            let mut last = 0u64;
            for &i in &order {
                let ack = r.on_segment(i as u64 * 100, 100);
                prop_assert!(ack >= last);
                last = ack;
            }
            prop_assert_eq!(r.bytes_received, last);
        }

        /// RTP receive state: for an arbitrary strictly-increasing delivered
        /// subset, received + lost == span of sequence numbers seen.
        #[test]
        fn rtp_loss_accounting(delivered in proptest::collection::btree_set(0u64..500, 1..200)) {
            let mut r = RtpRecvState::new();
            for &seq in &delivered {
                let pkt = RtpPacket {
                    ssrc: 1, seq, kind: StreamKind::Video, layer: Layer::default(),
                    frame_id: 0, marker: false, frame_pkts: 1, is_fec: false, is_retransmit: false,
                    capture_ts: SimTime::ZERO, meta: None,
                };
                r.on_packet(SimTime::from_millis(seq), &pkt, 100);
            }
            let first = *delivered.iter().next().unwrap();
            let last = *delivered.iter().last().unwrap();
            let span = last - first + 1;
            prop_assert_eq!(r.total_received + r.total_lost, span);
        }
    }
}
