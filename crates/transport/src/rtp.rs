//! RTP media packets and send/receive session state.
//!
//! All three VCAs transmit media over RTP or a variant of it (§2.1). The
//! simulation carries a structured [`RtpPacket`] instead of wire bytes: the
//! fields are exactly the header information the measurement relies on
//! (SSRC, sequence number, marker bit) plus frame metadata that a real
//! receiver would recover from the codec bitstream (resolution, FPS, QP) and
//! that the paper reads out of `chrome://webrtc-internals`.

use vcabench_simcore::{SimDuration, SimTime};

#[cfg(feature = "testkit-checks")]
use vcabench_simcore::{InvariantLog, Violation};

/// Media stream type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Video RTP stream.
    Video,
    /// Audio RTP stream (small constant bitrate).
    Audio,
}

/// Spatial/temporal layer of a packet (used by simulcast and SVC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Layer {
    /// Spatial layer / simulcast stream index (0 = lowest quality).
    pub spatial: u8,
    /// Temporal layer index (0 = base frame rate).
    pub temporal: u8,
}

/// Encoding parameters attached to a video frame, mirroring what the
/// WebRTC stats API exposes per second (§3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameMeta {
    /// Frame width in pixels (the paper reports this dimension).
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frames per second the encoder is currently producing.
    pub fps: f64,
    /// Quantization parameter (higher = coarser).
    pub qp: f64,
    /// True for intra (key) frames.
    pub keyframe: bool,
}

/// A simulated RTP packet.
#[derive(Debug, Clone, PartialEq)]
pub struct RtpPacket {
    /// Synchronization source: one per (sender, stream, layer).
    pub ssrc: u32,
    /// Sequence number. The simulation uses a u64 to avoid u16 wrap
    /// bookkeeping; loss detection semantics are identical.
    pub seq: u64,
    /// Media stream kind.
    pub kind: StreamKind,
    /// Layer of this packet.
    pub layer: Layer,
    /// Frame this packet belongs to.
    pub frame_id: u64,
    /// Marker bit: last packet of the frame.
    pub marker: bool,
    /// Total packets in this frame (lets the receiver detect completeness
    /// without waiting for sequence-gap inference).
    pub frame_pkts: u16,
    /// True for FEC/redundancy packets (Zoom's probing padding).
    pub is_fec: bool,
    /// True when this is a NACK-triggered retransmission (recovered packets
    /// must not erase the loss signal congestion control relies on).
    pub is_retransmit: bool,
    /// Capture timestamp at the sender (for one-way-delay measurement).
    pub capture_ts: SimTime,
    /// Frame metadata (video only; replicated on each packet of the frame).
    pub meta: Option<FrameMeta>,
}

/// Per-SSRC sender state: assigns sequence numbers and frame ids.
#[derive(Debug, Clone)]
pub struct RtpSendState {
    /// The stream's SSRC.
    pub ssrc: u32,
    next_seq: u64,
    next_frame: u64,
}

impl RtpSendState {
    /// New sender state for `ssrc`.
    pub fn new(ssrc: u32) -> Self {
        RtpSendState {
            ssrc,
            next_seq: 0,
            next_frame: 0,
        }
    }

    /// Allocate the next sequence number.
    pub fn next_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Allocate the next frame id.
    pub fn next_frame(&mut self) -> u64 {
        let f = self.next_frame;
        self.next_frame += 1;
        f
    }

    /// Number of packets sent so far.
    pub fn packets_sent(&self) -> u64 {
        self.next_seq
    }
}

/// Aggregate receive statistics over one report interval.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IntervalStats {
    /// Packets received this interval.
    pub received: u64,
    /// Packets detected lost (sequence gaps) this interval.
    pub lost: u64,
    /// Bytes received this interval.
    pub bytes: u64,
    /// Mean one-way delay of received packets, ms.
    pub mean_owd_ms: f64,
    /// Minimum one-way delay in the interval, ms. Delay-gradient controllers
    /// should prefer this: it tracks the *standing* queue while ignoring
    /// intra-frame serialization sawtooth.
    pub min_owd_ms: f64,
    /// Packets recovered by FEC this interval.
    pub fec_recovered: u64,
}

impl IntervalStats {
    /// Loss fraction in `[0, 1]` (after FEC recovery is *not* applied here;
    /// callers subtract recovered packets if they model FEC).
    pub fn loss_fraction(&self) -> f64 {
        let total = self.received + self.lost;
        if total == 0 {
            0.0
        } else {
            self.lost as f64 / total as f64
        }
    }

    /// Delivery rate over `interval`, Mbps.
    pub fn receive_rate_mbps(&self, interval: SimDuration) -> f64 {
        let s = interval.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / s / 1e6
        }
    }
}

/// Per-SSRC receiver state: detects gaps, measures delay, accumulates
/// interval statistics for RTCP reports.
#[derive(Debug, Clone)]
pub struct RtpRecvState {
    highest_seq: Option<u64>,
    current: IntervalStats,
    owd_sum_ms: f64,
    owd_min_ms: f64,
    owd_samples: u64,
    /// Lifetime totals.
    pub total_received: u64,
    /// Lifetime loss count.
    pub total_lost: u64,
    /// Sequence numbers delivered at least once (testkit builds only;
    /// the simulated network never duplicates, so a second first-delivery
    /// of a seq is an engine bug, not network behavior).
    #[cfg(feature = "testkit-checks")]
    seen_seqs: std::collections::HashSet<u64>,
    #[cfg(feature = "testkit-checks")]
    audit_log: InvariantLog,
}

impl RtpRecvState {
    /// Fresh receiver state.
    pub fn new() -> Self {
        RtpRecvState {
            highest_seq: None,
            current: IntervalStats::default(),
            owd_sum_ms: 0.0,
            owd_min_ms: f64::INFINITY,
            owd_samples: 0,
            total_received: 0,
            total_lost: 0,
            #[cfg(feature = "testkit-checks")]
            seen_seqs: std::collections::HashSet::new(),
            #[cfg(feature = "testkit-checks")]
            audit_log: InvariantLog::new(),
        }
    }

    /// Ingest a packet that arrived at `now` with on-wire size `size`.
    pub fn on_packet(&mut self, now: SimTime, pkt: &RtpPacket, size: usize) {
        #[cfg(feature = "testkit-checks")]
        {
            let fresh = self.seen_seqs.insert(pkt.seq);
            let seq = pkt.seq;
            self.audit_log
                .check(now, "rtp-no-duplicate", fresh || pkt.is_retransmit, || {
                    format!("seq {seq} delivered twice without being a retransmission")
                });
            let capture = pkt.capture_ts;
            self.audit_log
                .check(now, "rtp-causal-arrival", now >= capture, || {
                    format!("packet captured at {capture} arrived earlier, at {now}")
                });
        }
        self.current.received += 1;
        self.current.bytes += size as u64;
        self.total_received += 1;
        let owd_ms = now.saturating_since(pkt.capture_ts).as_micros() as f64 / 1000.0;
        self.owd_sum_ms += owd_ms;
        self.owd_min_ms = self.owd_min_ms.min(owd_ms);
        self.owd_samples += 1;
        match self.highest_seq {
            None => self.highest_seq = Some(pkt.seq),
            Some(h) if pkt.seq > h => {
                let gap = pkt.seq - h - 1;
                self.current.lost += gap;
                self.total_lost += gap;
                self.highest_seq = Some(pkt.seq);
            }
            Some(_) => {
                // Reordered packet previously counted lost: repair the count
                // — unless it is a retransmission, which repairs the *frame*
                // but must leave the loss signal intact (WebRTC reports
                // pre-recovery loss to the bandwidth estimator).
                if !pkt.is_retransmit {
                    if self.current.lost > 0 {
                        self.current.lost -= 1;
                    }
                    self.total_lost = self.total_lost.saturating_sub(1);
                }
            }
        }
    }

    /// Mark `n` packets as recovered by FEC this interval.
    pub fn on_fec_recovery(&mut self, n: u64) {
        self.current.fec_recovered += n;
    }

    /// Close the current interval, returning its statistics.
    pub fn take_interval(&mut self) -> IntervalStats {
        let mut stats = std::mem::take(&mut self.current);
        stats.mean_owd_ms = if self.owd_samples > 0 {
            self.owd_sum_ms / self.owd_samples as f64
        } else {
            0.0
        };
        stats.min_owd_ms = if self.owd_samples > 0 {
            self.owd_min_ms
        } else {
            0.0
        };
        self.owd_sum_ms = 0.0;
        self.owd_min_ms = f64::INFINITY;
        self.owd_samples = 0;
        stats
    }

    /// Highest sequence number seen (None before the first packet).
    pub fn highest_seq(&self) -> Option<u64> {
        self.highest_seq
    }

    /// Violations recorded by this receiver's auditor.
    #[cfg(feature = "testkit-checks")]
    pub fn audit_violations(&self) -> &[Violation] {
        self.audit_log.violations()
    }

    /// Number of invariant checks this receiver has performed.
    #[cfg(feature = "testkit-checks")]
    pub fn audit_checks(&self) -> u64 {
        self.audit_log.checks_performed()
    }

    /// Lifetime loss fraction.
    pub fn lifetime_loss_fraction(&self) -> f64 {
        let total = self.total_received + self.total_lost;
        if total == 0 {
            0.0
        } else {
            self.total_lost as f64 / total as f64
        }
    }
}

impl Default for RtpRecvState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64, capture: SimTime) -> RtpPacket {
        RtpPacket {
            ssrc: 1,
            seq,
            kind: StreamKind::Video,
            layer: Layer::default(),
            frame_id: seq / 3,
            marker: seq % 3 == 2,
            frame_pkts: 3,
            is_fec: false,
            is_retransmit: false,
            capture_ts: capture,
            meta: None,
        }
    }

    #[test]
    fn send_state_allocates_monotonic() {
        let mut s = RtpSendState::new(7);
        assert_eq!(s.next_seq(), 0);
        assert_eq!(s.next_seq(), 1);
        assert_eq!(s.next_frame(), 0);
        assert_eq!(s.next_frame(), 1);
        assert_eq!(s.packets_sent(), 2);
    }

    #[test]
    fn recv_counts_in_order_packets() {
        let mut r = RtpRecvState::new();
        for i in 0..10 {
            r.on_packet(
                SimTime::from_millis(i * 10 + 5),
                &pkt(i, SimTime::from_millis(i * 10)),
                1200,
            );
        }
        let s = r.take_interval();
        assert_eq!(s.received, 10);
        assert_eq!(s.lost, 0);
        assert_eq!(s.bytes, 12_000);
        assert!((s.mean_owd_ms - 5.0).abs() < 1e-9);
        assert_eq!(s.loss_fraction(), 0.0);
    }

    #[test]
    fn recv_detects_gaps() {
        let mut r = RtpRecvState::new();
        r.on_packet(SimTime::from_millis(1), &pkt(0, SimTime::ZERO), 100);
        r.on_packet(SimTime::from_millis(2), &pkt(4, SimTime::ZERO), 100);
        let s = r.take_interval();
        assert_eq!(s.lost, 3);
        assert!((s.loss_fraction() - 0.6).abs() < 1e-9);
        assert!((r.lifetime_loss_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn reordering_repairs_loss_count() {
        let mut r = RtpRecvState::new();
        r.on_packet(SimTime::from_millis(1), &pkt(0, SimTime::ZERO), 100);
        r.on_packet(SimTime::from_millis(2), &pkt(2, SimTime::ZERO), 100);
        r.on_packet(SimTime::from_millis(3), &pkt(1, SimTime::ZERO), 100);
        let s = r.take_interval();
        assert_eq!(s.lost, 0, "reordered packet is not a loss");
        assert_eq!(s.received, 3);
    }

    #[cfg(feature = "testkit-checks")]
    #[test]
    fn duplicate_delivery_is_flagged() {
        let mut r = RtpRecvState::new();
        r.on_packet(SimTime::from_millis(1), &pkt(0, SimTime::ZERO), 100);
        r.on_packet(SimTime::from_millis(2), &pkt(0, SimTime::ZERO), 100);
        assert_eq!(r.audit_violations().len(), 1);
        assert_eq!(r.audit_violations()[0].invariant, "rtp-no-duplicate");
        // A retransmitted copy of a seen seq is legitimate recovery.
        let mut retx = pkt(0, SimTime::ZERO);
        retx.is_retransmit = true;
        r.on_packet(SimTime::from_millis(3), &retx, 100);
        assert_eq!(r.audit_violations().len(), 1);
        assert!(r.audit_checks() >= 6);
    }

    #[test]
    fn interval_resets() {
        let mut r = RtpRecvState::new();
        r.on_packet(SimTime::from_millis(1), &pkt(0, SimTime::ZERO), 100);
        let _ = r.take_interval();
        let s2 = r.take_interval();
        assert_eq!(s2.received, 0);
        assert_eq!(s2.mean_owd_ms, 0.0);
    }

    #[test]
    fn receive_rate_computation() {
        let s = IntervalStats {
            bytes: 12_500, // at 100 ms -> 1 Mbps
            ..Default::default()
        };
        assert!((s.receive_rate_mbps(SimDuration::from_millis(100)) - 1.0).abs() < 1e-9);
        assert_eq!(s.receive_rate_mbps(SimDuration::ZERO), 0.0);
    }
}
