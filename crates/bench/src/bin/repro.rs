//! `repro` — regenerate every table and figure of the paper, or run a
//! declarative experiment campaign.
//!
//! ```text
//! repro <experiment> [--quick] [--json <path>] [--jobs <n>]
//! repro campaign <spec.json> [--jobs <n>] [--out <dir>] [--rerun] [--trace-dir <dir>]
//! repro bench [--quick] [--baseline <file>] [--out <dir>] [--label <name>] [--threshold <x>]
//! repro infer [<campaign.json>] [--quick] [--jobs <n>] [--out <dir>] [--fit <model.json>]
//!             [--fit-gbt <model.json>] [--estimator <name>]
//!             [--max-bitrate-err <x>] [--min-freeze-recall <x>] [--identify]
//! repro identify [<campaign.json>] [--quick] [--jobs <n>] [--out <dir>]
//!                [--fit <model.json>] [--min-id-accuracy <x>]
//! repro observe [<campaign.json>] [--quick] [--json <path>] [--jobs <n>] [--out <dir>]
//! repro diff <a> <b> [--jobs <n>] [--out <dir>]
//! repro validate-trace [--strict] <file.jsonl>...
//! repro --profile [--quick] [--json <path>]
//! ```
//!
//! `--quick` uses reduced presets (coarser sweeps, fewer repetitions);
//! `--json <path>` additionally writes machine-readable results;
//! `--jobs <n>` parallelizes the campaign-driven experiments (fig1, fig8,
//! campaign) without changing any output byte;
//! `--trace-dir <dir>` writes per-run telemetry artifacts (JSONL event
//! trace, series CSV, manifest) next to the campaign result cache;
//! `validate-trace` checks JSONL traces against the versioned schema and
//! reports events dropped by a bounded ring (from the sibling manifest);
//! `observe` runs the streaming span/anomaly diagnoser over the pinned
//! disruption suite (gated: the seeded disruption → queue-buildup →
//! freeze chain must be found, unconstrained runs must diagnose clean)
//! or over a campaign spec's expanded runs (report only);
//! `diff` compares two exported `.events.jsonl` traces — or two campaign
//! trace directories, matched by label — via offline diagnosis and
//! writes a `vcabench-diff/v1` artifact;
//! `bench` runs the pinned engine benchmark suite, writes a versioned
//! `BENCH_<label>.json` artifact, and (with `--baseline`) exits nonzero if
//! any scenario's wall time regresses past the threshold;
//! `infer` runs the passive-QoE-inference validation harness over the
//! pinned suite (or a campaign spec's expanded runs) and exits nonzero if
//! the gated estimator's accuracy regresses past the gates; `--estimator`
//! picks which estimator the gate applies to (`heuristic`, `linear`, or
//! `gbt` — the gradient-boosted trees are held to a tighter default);
//! `--fit-gbt` refits the GBT over the pinned training campaign and
//! freezes it to the given path;
//! `infer --identify` instead routes every run through the flow-level
//! classifier to select the per-VCA model and gates the routed accuracy
//! against the spec-routed reference;
//! `identify` runs the flow-level VCA identification harness and exits
//! nonzero if the frozen centroid model's accuracy misses the gate;
//! `--profile` prints a wall-clock profile of the simulation engine.

use std::io::Write;
use std::path::PathBuf;

use vcabench_campaign::{slug, CampaignSpec};
use vcabench_harness::experiments::*;
use vcabench_vca::VcaKind;

/// Every experiment name the positional argument accepts.
const EXPERIMENTS: &[(&str, &str)] = &[
    ("table2", "unconstrained utilization"),
    (
        "fig1",
        "static shaping sweeps (a: uplink, b: downlink, c: browser/native)",
    ),
    (
        "fig2",
        "encoding parameters vs capacity (Meet, Teams-Chrome)",
    ),
    ("fig3", "freeze ratio and FIR counts"),
    (
        "fig4",
        "uplink disruptions: timelines + TTR [also runs fig5, fig6]",
    ),
    ("fig5", "downlink disruptions (alias: runs the fig4 group)"),
    (
        "fig6",
        "C2 upstream during downlink disruption (alias: fig4 group)",
    ),
    ("fig8", "VCA vs VCA uplink shares [also runs fig10]"),
    ("fig9", "VCA vs VCA timelines @0.5 Mbps [also runs fig11]"),
    (
        "fig10",
        "VCA vs VCA downlink shares (alias: runs the fig8 group)",
    ),
    (
        "fig11",
        "Teams vs Zoom timeline @1.0 Mbps (alias: runs the fig9 group)",
    ),
    ("fig12", "VCA vs TCP (iPerf3) [also runs fig13]"),
    (
        "fig13",
        "Zoom probe burst vs iPerf3 (alias: runs the fig12 group)",
    ),
    ("fig14", "Zoom vs Netflix"),
    ("fig15", "call modalities"),
    ("ext", "extensions: impairments grid + model ablations"),
    ("all", "everything above"),
];

fn print_help() {
    println!("usage: repro <experiment> [--quick] [--json <path>] [--jobs <n>]");
    println!(
        "       repro campaign <spec.json> [--jobs <n>] [--out <dir>] [--rerun] [--trace-dir <dir>]"
    );
    println!(
        "       repro bench [--quick] [--baseline <file>] [--out <dir>] [--label <name>] \
         [--threshold <x>]"
    );
    println!(
        "       repro infer [<campaign.json>] [--quick] [--jobs <n>] [--out <dir>] \
         [--fit <model.json>]"
    );
    println!(
        "                   [--fit-gbt <model.json>] [--estimator <name>] \
         [--max-bitrate-err <x>]"
    );
    println!("                   [--min-freeze-recall <x>] [--identify]");
    println!(
        "       repro identify [<campaign.json>] [--quick] [--jobs <n>] [--out <dir>] \
         [--fit <model.json>]"
    );
    println!("                   [--min-id-accuracy <x>]");
    println!(
        "       repro observe [<campaign.json>] [--quick] [--json <path>] [--jobs <n>] \
         [--out <dir>]"
    );
    println!("       repro diff <a> <b> [--jobs <n>] [--out <dir>]");
    println!("       repro validate-trace [--strict] <file.jsonl>...");
    println!("       repro --profile [--quick] [--json <path>]");
    println!();
    println!("experiments:");
    for (name, desc) in EXPERIMENTS {
        println!("  {name:<8} {desc}");
    }
    println!();
    println!("subcommands:");
    println!("  campaign <spec.json>  expand and run a declarative campaign spec;");
    println!("                        results are cached under --out (default");
    println!("                        campaign-results/) keyed by content hash");
    println!("  bench                 run the pinned engine benchmark suite and write");
    println!("                        a schema-versioned BENCH_<label>.json artifact;");
    println!("                        with --baseline, diff against a prior artifact");
    println!("                        and exit 1 past the wall-time threshold");
    println!("  infer [<campaign.json>]");
    println!("                        run the passive-QoE-inference validation harness:");
    println!("                        every scenario runs with packet taps attached and");
    println!("                        the estimates are scored against the stats-API");
    println!("                        ground truth; exit 1 if the calibrated estimator");
    println!("                        misses the accuracy gates");
    println!("  identify [<campaign.json>]");
    println!("                        run the flow-level VCA identification harness:");
    println!("                        every scenario runs with the fingerprint bank");
    println!("                        attached and both classifiers are scored against");
    println!("                        the spec ground truth (confusion matrix, per-VCA");
    println!("                        precision/recall); exit 1 if the frozen centroid");
    println!("                        model misses the accuracy gate");
    println!("  observe [<campaign.json>]");
    println!("                        run the streaming span/anomaly diagnoser over the");
    println!("                        pinned disruption suite (or a campaign spec's");
    println!("                        expanded runs), print per-run health reports, and");
    println!("                        write OBSERVE_report.json plus per-run span JSONL;");
    println!("                        in pinned mode, exit 1 unless every disrupted run");
    println!("                        carries the disruption->queue-buildup->freeze");
    println!("                        chain and every unconstrained run is clean");
    println!("  diff <a> <b>          diagnose two exported .events.jsonl traces (or two");
    println!("                        campaign trace directories, matched by label) and");
    println!("                        report per-window metric deltas, appearing and");
    println!("                        disappearing anomalies, and span-duration shifts;");
    println!("                        writes a vcabench-diff/v1 DIFF_report.json");
    println!("  validate-trace <file.jsonl>...");
    println!("                        validate JSONL event traces against the");
    println!("                        telemetry schema (exit 1 on any violation) and");
    println!("                        report events dropped by a bounded ring, read");
    println!("                        from the sibling .manifest.json when present");
    println!();
    println!("options:");
    println!("  --quick            reduced presets (coarser sweeps, fewer repetitions)");
    println!("  --json <path>      also write machine-readable results to <path>");
    println!("  --jobs <n>         worker threads for campaign-driven runs (default 1;");
    println!("                     output is byte-identical for any n)");
    println!("  --out <dir>        campaign result-store directory (campaign; default");
    println!("                     campaign-results/) or artifact directory (bench,");
    println!("                     infer, identify, observe, diff)");
    println!("  --rerun            recompute cached campaign runs");
    println!("  --strict           (validate-trace only) exit 1 when a manifest reports");
    println!("                     dropped events");
    println!("  --baseline <file>  (bench only) BENCH_*.json to diff against");
    println!("  --label <name>     (bench only) artifact label (default: the mode,");
    println!("                     `full` or `quick`)");
    println!(
        "  --threshold <x>    (bench only) max wall-time ratio vs the baseline \
         (default {:.1})",
        vcabench_bench::DEFAULT_THRESHOLD
    );
    println!("  --trace-dir <dir>  (campaign only) write per-run telemetry artifacts");
    println!("                     (<label>.events.jsonl / .series.csv / .manifest.json)");
    println!("  --fit <model.json> (infer) fit a fresh calibration model from the joined");
    println!("                     windows, write it to <model.json>, and score with it");
    println!("                     instead of the built-in model; with --identify, fit");
    println!("                     the per-VCA model bundle instead. (identify) fit a");
    println!("                     centroid classifier over the pinned training campaign,");
    println!("                     write it to <model.json>, and score with it");
    println!("  --fit-gbt <model.json>");
    println!("                     (infer only) fit the gradient-boosted-tree estimator");
    println!("                     over the pinned training campaign (never the evaluated");
    println!("                     scenarios), write it to <model.json>, and score with");
    println!("                     it instead of the built-in gbt-v1 artifact");
    println!("  --estimator <name> (infer only) which estimator the accuracy gate applies");
    println!(
        "                     to: {} (default linear; the gbt",
        vcabench_infer::ESTIMATOR_NAMES.join(", ")
    );
    println!(
        "                     default bitrate gate is {:.2} vs {:.2})",
        vcabench_harness::infer::DEFAULT_MAX_BITRATE_ERR_GBT,
        vcabench_harness::infer::DEFAULT_MAX_BITRATE_ERR
    );
    println!("  --identify         (infer only) route every run through the flow-level");
    println!("                     classifier to select the per-VCA calibrated model");
    println!("                     instead of reading the kind from the spec; gates the");
    println!(
        "                     routed-vs-spec-routed bitrate-error delta (max {:.2})",
        vcabench_harness::DEFAULT_MAX_ROUTED_DELTA
    );
    println!(
        "  --min-id-accuracy <x>   (identify only) gate: min identification accuracy \
         (default {:.2})",
        vcabench_harness::DEFAULT_MIN_ID_ACCURACY
    );
    println!(
        "  --max-bitrate-err <x>   (infer only) gate: max pooled median relative \
         bitrate error (default {:.2})",
        vcabench_harness::infer::DEFAULT_MAX_BITRATE_ERR
    );
    println!(
        "  --min-freeze-recall <x> (infer only) gate: min freeze recall \
         (default {:.1})",
        vcabench_harness::infer::DEFAULT_MIN_FREEZE_RECALL
    );
    println!("  --profile          profile the simulation engine on a fixed two-party");
    println!("                     workload and print where wall-clock time goes,");
    println!("                     including per-event-type p50/p90/p99 latencies;");
    println!("                     with --json, also write a vcabench-profile/v1");
    println!("                     artifact");
}

struct Args {
    experiment: String,
    spec_path: Option<String>,
    trace_paths: Vec<String>,
    quick: bool,
    json: Option<String>,
    jobs: usize,
    out: Option<PathBuf>,
    rerun: bool,
    trace_dir: Option<PathBuf>,
    profile: bool,
    baseline: Option<String>,
    label: Option<String>,
    threshold: f64,
    fit: Option<String>,
    fit_gbt: Option<String>,
    estimator: Option<String>,
    max_bitrate_err: Option<f64>,
    min_freeze_recall: Option<f64>,
    identify: bool,
    min_id_accuracy: Option<f64>,
    strict: bool,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("try `repro --help`");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut positionals: Vec<String> = Vec::new();
    let mut quick = false;
    let mut json = None;
    let mut jobs = 1usize;
    let mut out = None;
    let mut rerun = false;
    let mut trace_dir = None;
    let mut profile = false;
    let mut baseline = None;
    let mut label = None;
    let mut threshold = vcabench_bench::DEFAULT_THRESHOLD;
    let mut fit = None;
    let mut fit_gbt = None;
    let mut estimator: Option<String> = None;
    let mut max_bitrate_err = None;
    let mut min_freeze_recall = None;
    let mut identify = false;
    let mut min_id_accuracy = None;
    let mut strict = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--rerun" => rerun = true,
            "--strict" => strict = true,
            "--profile" => profile = true,
            "--identify" => identify = true,
            "--trace-dir" => {
                trace_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    usage_error("--trace-dir requires a directory argument")
                })));
            }
            "--json" => {
                json = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--json requires a path argument")),
                );
            }
            "--out" => {
                out = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    usage_error("--out requires a directory argument")
                })));
            }
            "--baseline" => {
                baseline = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--baseline requires a path argument")),
                );
            }
            "--label" => {
                label = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--label requires a name argument")),
                );
            }
            "--threshold" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--threshold requires a number argument"));
                threshold = v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--threshold expects a number, got `{v}`"))
                });
                if !(threshold >= 1.0 && threshold.is_finite()) {
                    usage_error("--threshold must be a finite ratio >= 1.0");
                }
            }
            "--fit" => {
                fit = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--fit requires a path argument")),
                );
            }
            "--fit-gbt" => {
                fit_gbt = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--fit-gbt requires a path argument")),
                );
            }
            "--estimator" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--estimator requires a name argument"));
                if !vcabench_infer::ESTIMATOR_NAMES.contains(&v.as_str()) {
                    usage_error(&format!(
                        "--estimator expects one of {}, got `{v}`",
                        vcabench_infer::ESTIMATOR_NAMES.join(", ")
                    ));
                }
                estimator = Some(v);
            }
            "--max-bitrate-err" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--max-bitrate-err requires a number argument"));
                let x: f64 = v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--max-bitrate-err expects a number, got `{v}`"))
                });
                if !(x > 0.0 && x.is_finite()) {
                    usage_error("--max-bitrate-err must be a finite ratio > 0");
                }
                max_bitrate_err = Some(x);
            }
            "--min-freeze-recall" => {
                let v = it.next().unwrap_or_else(|| {
                    usage_error("--min-freeze-recall requires a number argument")
                });
                let x: f64 = v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--min-freeze-recall expects a number, got `{v}`"))
                });
                if !(0.0..=1.0).contains(&x) {
                    usage_error("--min-freeze-recall must be within [0, 1]");
                }
                min_freeze_recall = Some(x);
            }
            "--min-id-accuracy" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--min-id-accuracy requires a number argument"));
                let x: f64 = v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--min-id-accuracy expects a number, got `{v}`"))
                });
                if !(0.0..=1.0).contains(&x) {
                    usage_error("--min-id-accuracy must be within [0, 1]");
                }
                min_id_accuracy = Some(x);
            }
            "--jobs" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--jobs requires a number argument"));
                jobs = v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--jobs expects a positive integer, got `{v}`"))
                });
                if jobs == 0 {
                    usage_error("--jobs must be at least 1");
                }
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                usage_error(&format!("unknown option `{other}`"));
            }
            other => positionals.push(other.to_string()),
        }
    }
    if profile && !positionals.is_empty() {
        usage_error(&format!(
            "--profile is a standalone mode; unexpected argument `{}`",
            positionals[0]
        ));
    }
    let experiment = if profile {
        "profile".to_string()
    } else {
        match positionals.len() {
            0 => "all".to_string(),
            _ => positionals[0].clone(),
        }
    };
    let mut trace_paths = Vec::new();
    let spec_path = if experiment == "campaign" {
        match positionals.len() {
            1 => usage_error("campaign requires a spec file: repro campaign <spec.json>"),
            2 => Some(positionals[1].clone()),
            _ => usage_error(&format!("unexpected argument `{}`", positionals[2])),
        }
    } else if experiment == "validate-trace" {
        if positionals.len() < 2 {
            usage_error(
                "validate-trace requires at least one trace file: \
                 repro validate-trace <file.jsonl>...",
            );
        }
        trace_paths = positionals[1..].to_vec();
        None
    } else if experiment == "diff" {
        match positionals.len() {
            0..=2 => usage_error("diff requires two sides: repro diff <a> <b>"),
            3 => {
                trace_paths = positionals[1..].to_vec();
                None
            }
            _ => usage_error(&format!("unexpected argument `{}`", positionals[3])),
        }
    } else if experiment == "profile" {
        None
    } else if experiment == "infer" || experiment == "identify" || experiment == "observe" {
        match positionals.len() {
            1 => None,
            2 => Some(positionals[1].clone()),
            _ => usage_error(&format!("unexpected argument `{}`", positionals[2])),
        }
    } else if experiment == "bench" {
        if positionals.len() > 1 {
            usage_error(&format!("unexpected argument `{}`", positionals[1]));
        }
        None
    } else {
        if positionals.len() > 1 {
            usage_error(&format!("unexpected argument `{}`", positionals[1]));
        }
        if !EXPERIMENTS.iter().any(|(name, _)| *name == experiment) {
            usage_error(&format!("unknown experiment `{experiment}`"));
        }
        None
    };
    if trace_dir.is_some() && experiment != "campaign" {
        usage_error("--trace-dir only applies to the campaign subcommand");
    }
    if experiment != "bench" {
        if baseline.is_some() {
            usage_error("--baseline only applies to the bench subcommand");
        }
        if label.is_some() {
            usage_error("--label only applies to the bench subcommand");
        }
    }
    if experiment != "infer" && experiment != "identify" && fit.is_some() {
        usage_error("--fit only applies to the infer and identify subcommands");
    }
    if experiment != "infer" {
        if max_bitrate_err.is_some() {
            usage_error("--max-bitrate-err only applies to the infer subcommand");
        }
        if min_freeze_recall.is_some() {
            usage_error("--min-freeze-recall only applies to the infer subcommand");
        }
        if identify {
            usage_error("--identify only applies to the infer subcommand");
        }
        if fit_gbt.is_some() {
            usage_error("--fit-gbt only applies to the infer subcommand");
        }
        if estimator.is_some() {
            usage_error("--estimator only applies to the infer subcommand");
        }
    }
    if fit_gbt.is_some() && fit.is_some() {
        usage_error("--fit and --fit-gbt are mutually exclusive; fit one model per run");
    }
    if identify && fit_gbt.is_some() {
        usage_error("--fit-gbt fits the global GBT estimator; it does not apply to --identify");
    }
    if identify && estimator.is_some() {
        usage_error(
            "--estimator selects the gated global estimator; with --identify the \
             routed per-family path is gated instead",
        );
    }
    if experiment != "identify" && min_id_accuracy.is_some() {
        usage_error("--min-id-accuracy only applies to the identify subcommand");
    }
    if experiment != "validate-trace" && strict {
        usage_error("--strict only applies to the validate-trace subcommand");
    }
    if identify && (max_bitrate_err.is_some() || min_freeze_recall.is_some()) {
        usage_error(
            "--max-bitrate-err/--min-freeze-recall gate the spec-routed report; \
             with --identify use the routed-delta gate instead",
        );
    }
    Args {
        experiment,
        spec_path,
        trace_paths,
        quick,
        json,
        jobs,
        out,
        rerun,
        trace_dir,
        profile,
        baseline,
        label,
        threshold,
        fit,
        fit_gbt,
        estimator,
        max_bitrate_err,
        min_freeze_recall,
        identify,
        min_id_accuracy,
        strict,
    }
}

fn emit_json(
    json: &mut Option<serde_json::Map<String, serde_json::Value>>,
    key: &str,
    v: impl serde::Serialize,
) {
    if let Some(map) = json.as_mut() {
        map.insert(
            key.to_string(),
            serde_json::to_value(v).expect("serializable result"),
        );
    }
}

fn run_bench_command(args: &Args) -> ! {
    let label = args
        .label
        .clone()
        .unwrap_or_else(|| if args.quick { "quick" } else { "full" }.to_string());
    let out_dir = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("bench-results"));
    let mode = if args.quick { "quick" } else { "full" };
    println!("bench: pinned suite, {mode} mode");
    let report = vcabench_bench::run_bench(&label, args.quick, |r| {
        println!(
            "  {:<20} {:>8.3}s  {:>12} events  {:>12.0} events/s",
            r.name, r.wall_secs, r.events_processed, r.events_per_sec
        );
    });
    let path = report.write_to(&out_dir).unwrap_or_else(|e| {
        eprintln!("repro: cannot write bench artifact: {e}");
        std::process::exit(1);
    });
    println!("wrote {}", path.display());
    let Some(baseline_path) = &args.baseline else {
        std::process::exit(0);
    };
    let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("repro: cannot read {baseline_path}: {e}");
        std::process::exit(1);
    });
    let baseline = vcabench_bench::BenchReport::from_json(&text).unwrap_or_else(|e| {
        eprintln!("repro: {baseline_path}: {e}");
        std::process::exit(1);
    });
    let cmp = vcabench_bench::compare(&report, &baseline, args.threshold);
    println!(
        "baseline {} ({} mode, threshold {:.2}x):",
        baseline_path, baseline.mode, args.threshold
    );
    for line in &cmp.lines {
        println!("  {line}");
    }
    for name in &cmp.unmatched {
        println!("  {name:<20} only in one report (skipped)");
    }
    if !cmp.behavior_changes.is_empty() {
        println!(
            "warning: event counts changed for {} scenario(s) — the simulated \
             workload differs from the baseline",
            cmp.behavior_changes.len()
        );
    }
    if cmp.passed() {
        println!("bench gate: PASS");
        std::process::exit(0);
    }
    println!("bench gate: FAIL ({} regression(s))", cmp.regressions.len());
    std::process::exit(1);
}

fn run_campaign_command(args: &Args) -> ! {
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("campaign-results"));
    let path = args.spec_path.as_ref().expect("campaign has a spec path");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("repro: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let campaign = CampaignSpec::from_json(&text).unwrap_or_else(|e| {
        eprintln!("repro: {path}: {e}");
        std::process::exit(1);
    });
    let summary = match &args.trace_dir {
        Some(trace_dir) => vcabench_harness::run_campaign_cached_traced(
            &campaign, args.jobs, &out, args.rerun, trace_dir,
        ),
        None => vcabench_harness::run_campaign_cached(&campaign, args.jobs, &out, args.rerun),
    }
    .unwrap_or_else(|e| {
        eprintln!("repro: campaign `{}`: {e}", campaign.name);
        std::process::exit(1);
    });
    println!(
        "campaign `{}`: {} runs ({} computed, {} cached) -> {}",
        campaign.name,
        summary.total,
        summary.computed,
        summary.cached,
        summary.store_path.display()
    );
    for record in &summary.results {
        println!("  {} {}", &record.hash[..12], record.label);
    }
    if let Some(trace_dir) = &args.trace_dir {
        println!("trace artifacts -> {}", trace_dir.display());
    }
    std::process::exit(0);
}

fn run_infer_command(args: &Args) -> ! {
    use vcabench_harness::infer::{
        DEFAULT_MAX_BITRATE_ERR, DEFAULT_MAX_BITRATE_ERR_GBT, DEFAULT_MIN_FREEZE_RECALL,
    };
    // Scenario list: a campaign spec's expanded runs, or the pinned
    // benchmark suite (every scenario, inference-stage one included —
    // it is just another shaped two-party workload here).
    let scenarios: Vec<(String, vcabench_campaign::ScenarioSpec)> = match &args.spec_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("repro: cannot read {path}: {e}");
                std::process::exit(1);
            });
            let campaign = CampaignSpec::from_json(&text).unwrap_or_else(|e| {
                eprintln!("repro: {path}: {e}");
                std::process::exit(1);
            });
            let runs = campaign.expand().unwrap_or_else(|e| {
                eprintln!("repro: campaign `{}`: {e}", campaign.name);
                std::process::exit(1);
            });
            println!(
                "infer: campaign `{}`, {} runs, {} job(s)",
                campaign.name,
                runs.len(),
                args.jobs
            );
            runs.into_iter().map(|r| (r.label, r.spec)).collect()
        }
        None => {
            let suite = vcabench_bench::scenario::pinned(args.quick);
            println!(
                "infer: pinned suite ({} scenarios, {} mode), {} job(s)",
                suite.len(),
                if args.quick { "quick" } else { "full" },
                args.jobs
            );
            suite.into_iter().map(|s| (s.name, s.spec)).collect()
        }
    };
    if args.identify {
        run_infer_identify(args, &scenarios);
    }
    let rows = vcabench_harness::infer_suite(&scenarios, args.jobs);
    let model = match &args.fit {
        Some(path) => {
            let all: Vec<vcabench_harness::WindowRow> = rows.iter().flatten().cloned().collect();
            let model = vcabench_harness::fit_model(&all).unwrap_or_else(|| {
                eprintln!("repro: model fit failed (degenerate design matrix)");
                std::process::exit(1);
            });
            std::fs::write(path, model.to_json()).unwrap_or_else(|e| {
                eprintln!("repro: cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("fitted calibration model -> {path}");
            model
        }
        None => {
            let registry = vcabench_harness::model_registry();
            registry.linear("linear-v1").unwrap_or_else(|e| {
                eprintln!("repro: {e}");
                std::process::exit(1);
            })
        }
    };
    // The GBT estimator: either refit over the pinned training campaign
    // (train/eval separation — never the evaluation rows) and frozen to
    // the given path, or the committed `gbt-v1` registry artifact.
    let gbt = match &args.fit_gbt {
        Some(path) => {
            let training = vcabench_harness::training_suite(args.quick);
            println!(
                "fitting GBT over the pinned training campaign ({} scenarios)",
                training.len()
            );
            let train_rows = vcabench_harness::infer_suite(&training, args.jobs);
            let all: Vec<vcabench_harness::WindowRow> =
                train_rows.iter().flatten().cloned().collect();
            let gbt = vcabench_harness::fit_gbt(&all).unwrap_or_else(|| {
                eprintln!("repro: GBT fit failed (no usable training windows)");
                std::process::exit(1);
            });
            std::fs::write(path, gbt.to_json()).unwrap_or_else(|e| {
                eprintln!("repro: cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("fitted GBT model -> {path}");
            gbt
        }
        None => {
            let registry = vcabench_harness::model_registry();
            registry.gbt("gbt-v1").unwrap_or_else(|e| {
                eprintln!("repro: {e}");
                std::process::exit(1);
            })
        }
    };
    let report = vcabench_harness::build_report(&rows, &model, &gbt);
    print!("{}", vcabench_harness::render_infer_report(&report));
    let out_dir = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("infer-results"));
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
        eprintln!("repro: cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    });
    let artifact = out_dir.join("INFER_report.json");
    std::fs::write(&artifact, vcabench_harness::infer_report_json(&report)).unwrap_or_else(|e| {
        eprintln!("repro: cannot write {}: {e}", artifact.display());
        std::process::exit(1);
    });
    println!("wrote {}", artifact.display());
    // Accuracy gates apply to the selected estimator (default: the
    // calibrated linear model). The GBT default gate is tighter — the
    // tree ensemble must beat the linear model to earn its keep.
    let selected = args.estimator.as_deref().unwrap_or("linear");
    let (report_name, default_max_err) = match selected {
        "heuristic" => ("heuristic", DEFAULT_MAX_BITRATE_ERR),
        "gbt" => ("gbt", DEFAULT_MAX_BITRATE_ERR_GBT),
        _ => ("calibrated", DEFAULT_MAX_BITRATE_ERR),
    };
    let gated = report
        .estimators
        .iter()
        .find(|e| e.estimator == report_name)
        .expect("report scores every selectable estimator");
    println!("gated estimator: {selected}");
    let max_err = args.max_bitrate_err.unwrap_or(default_max_err);
    let min_recall = args.min_freeze_recall.unwrap_or(DEFAULT_MIN_FREEZE_RECALL);
    let err = gated.bitrate.median_rel_err;
    let recall = gated.freeze.recall;
    let err_ok = err <= max_err;
    let recall_ok = recall >= min_recall;
    println!(
        "gate: median bitrate error {:.1}% (max {:.1}%) {}",
        err * 100.0,
        max_err * 100.0,
        if err_ok { "OK" } else { "FAIL" }
    );
    println!(
        "gate: freeze recall {recall:.2} (min {min_recall:.2}) {}",
        if recall_ok { "OK" } else { "FAIL" }
    );
    if err_ok && recall_ok {
        println!("infer gate: PASS");
        std::process::exit(0);
    }
    println!("infer gate: FAIL");
    std::process::exit(1);
}

/// The `infer --identify` path: route every run through the flow-level
/// classifier, score the identified-routing comparison against the
/// spec-routed reference, and gate on the pooled-median delta.
fn run_infer_identify(args: &Args, scenarios: &[(String, vcabench_campaign::ScenarioSpec)]) -> ! {
    let runs = vcabench_harness::infer_identify_suite(scenarios, args.jobs);
    let models = match &args.fit {
        Some(path) => {
            let models = vcabench_harness::fit_kind_models(scenarios, &runs);
            std::fs::write(path, models.to_json()).unwrap_or_else(|e| {
                eprintln!("repro: cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("fitted per-VCA model bundle -> {path}");
            models
        }
        None => vcabench_infer::KindModels::builtin(),
    };
    let classifier = vcabench_fingerprint::CentroidModel::builtin();
    let report = vcabench_harness::routed_report(scenarios, &runs, &models, &classifier);
    print!("{}", vcabench_harness::render_routed_report(&report));
    let out_dir = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("infer-results"));
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
        eprintln!("repro: cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    });
    let artifact = out_dir.join("ROUTED_report.json");
    std::fs::write(&artifact, vcabench_harness::routed_report_json(&report)).unwrap_or_else(|e| {
        eprintln!("repro: cannot write {}: {e}", artifact.display());
        std::process::exit(1);
    });
    println!("wrote {}", artifact.display());
    let max_delta = vcabench_harness::DEFAULT_MAX_ROUTED_DELTA;
    let delta_ok = report.delta <= max_delta;
    println!(
        "gate: routed delta {:+.2}pp (max {:+.2}pp) {}",
        report.delta * 100.0,
        max_delta * 100.0,
        if delta_ok { "OK" } else { "FAIL" }
    );
    if delta_ok {
        println!("infer --identify gate: PASS");
        std::process::exit(0);
    }
    println!("infer --identify gate: FAIL");
    std::process::exit(1);
}

fn run_identify_command(args: &Args) -> ! {
    // Scenario list mirrors `infer`: a campaign spec's expanded runs, or
    // the pinned benchmark suite.
    let scenarios: Vec<(String, vcabench_campaign::ScenarioSpec)> = match &args.spec_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("repro: cannot read {path}: {e}");
                std::process::exit(1);
            });
            let campaign = CampaignSpec::from_json(&text).unwrap_or_else(|e| {
                eprintln!("repro: {path}: {e}");
                std::process::exit(1);
            });
            let runs = campaign.expand().unwrap_or_else(|e| {
                eprintln!("repro: campaign `{}`: {e}", campaign.name);
                std::process::exit(1);
            });
            println!(
                "identify: campaign `{}`, {} runs, {} job(s)",
                campaign.name,
                runs.len(),
                args.jobs
            );
            runs.into_iter().map(|r| (r.label, r.spec)).collect()
        }
        None => {
            let suite = vcabench_bench::scenario::pinned(args.quick);
            println!(
                "identify: pinned suite ({} scenarios, {} mode), {} job(s)",
                suite.len(),
                if args.quick { "quick" } else { "full" },
                args.jobs
            );
            suite.into_iter().map(|s| (s.name, s.spec)).collect()
        }
    };
    let model = match &args.fit {
        Some(path) => {
            let train = vcabench_harness::training_suite(args.quick);
            println!(
                "fit: pinned training campaign ({} scenarios, {} mode)",
                train.len(),
                if args.quick { "quick" } else { "full" }
            );
            let rows = vcabench_harness::fingerprint_suite(&train, args.jobs);
            let model = vcabench_harness::fit_centroid(&rows).unwrap_or_else(|| {
                eprintln!("repro: centroid fit failed (a family has no training rows)");
                std::process::exit(1);
            });
            std::fs::write(path, model.to_json()).unwrap_or_else(|e| {
                eprintln!("repro: cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("fitted centroid model -> {path}");
            model
        }
        None => vcabench_fingerprint::CentroidModel::builtin(),
    };
    let rows = vcabench_harness::fingerprint_suite(&scenarios, args.jobs);
    let report = vcabench_harness::build_identify_report(&rows, &model);
    print!("{}", vcabench_harness::render_identify_report(&report));
    let out_dir = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("identify-results"));
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
        eprintln!("repro: cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    });
    let artifact = out_dir.join("IDENTIFY_report.json");
    std::fs::write(&artifact, vcabench_harness::identify_report_json(&report)).unwrap_or_else(
        |e| {
            eprintln!("repro: cannot write {}: {e}", artifact.display());
            std::process::exit(1);
        },
    );
    println!("wrote {}", artifact.display());
    // The gate applies to the frozen (or just-fitted) centroid model;
    // the rule classifier is reported for comparison only.
    let min_acc = args
        .min_id_accuracy
        .unwrap_or(vcabench_harness::DEFAULT_MIN_ID_ACCURACY);
    let acc = report.centroid_accuracy();
    let ok = acc >= min_acc;
    println!(
        "gate: centroid identification accuracy {acc:.3} (min {min_acc:.2}) {}",
        if ok { "OK" } else { "FAIL" }
    );
    if ok {
        println!("identify gate: PASS");
        std::process::exit(0);
    }
    println!("identify gate: FAIL");
    std::process::exit(1);
}

/// Events dropped by a bounded ring, read from the trace's sibling
/// manifest (`<label>.events.jsonl` → `<label>.manifest.json`). `None`
/// when there is no manifest next to the trace (loose JSONL files are
/// fine), `Some(Err)` when a manifest exists but cannot be parsed.
fn manifest_dropped_events(trace_path: &str) -> Option<Result<u64, String>> {
    let manifest_path = trace_path.strip_suffix(".events.jsonl")?.to_string() + ".manifest.json";
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(_) => return None,
    };
    let parsed = serde_json::from_str::<serde_json::Value>(&text)
        .map_err(|e| format!("{manifest_path}: {e}"))
        .and_then(|v| {
            v.get("events_dropped")
                .and_then(|d| d.as_u64())
                .ok_or_else(|| format!("{manifest_path}: missing `events_dropped`"))
        });
    Some(parsed)
}

fn run_validate_trace_command(args: &Args) -> ! {
    let mut failed = false;
    for path in &args.trace_paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("repro: cannot read {path}: {e}");
                failed = true;
            }
            Ok(text) => match vcabench_telemetry::validate_jsonl(&text) {
                Ok(counts) => {
                    let total: u64 = counts.values().sum();
                    let kinds: Vec<String> =
                        counts.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    println!("{path}: {total} events OK ({})", kinds.join(", "));
                    match manifest_dropped_events(path) {
                        None => {}
                        Some(Err(e)) => {
                            eprintln!("repro: {e}");
                            failed = true;
                        }
                        Some(Ok(0)) => {}
                        Some(Ok(dropped)) => {
                            println!(
                                "{path}: warning: {dropped} event(s) dropped by a bounded \
                                 ring — the trace is incomplete"
                            );
                            if args.strict {
                                failed = true;
                            }
                        }
                    }
                }
                Err(e) => {
                    eprintln!("repro: {path}: {e}");
                    failed = true;
                }
            },
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn run_observe_command(args: &Args) -> ! {
    let cfg = vcabench_observe::ObserveConfig::default();
    // Scenario list: a campaign spec's expanded runs (report only), or
    // the pinned disruption suite (gated).
    let (scenarios, gated) = match &args.spec_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("repro: cannot read {path}: {e}");
                std::process::exit(1);
            });
            let campaign = CampaignSpec::from_json(&text).unwrap_or_else(|e| {
                eprintln!("repro: {path}: {e}");
                std::process::exit(1);
            });
            let runs = campaign.expand().unwrap_or_else(|e| {
                eprintln!("repro: campaign `{}`: {e}", campaign.name);
                std::process::exit(1);
            });
            println!(
                "observe: campaign `{}`, {} runs, {} job(s)",
                campaign.name,
                runs.len(),
                args.jobs
            );
            let scenarios = runs
                .into_iter()
                .map(|r| vcabench_harness::ObserveScenario {
                    name: r.label,
                    expect: None,
                    spec: r.spec,
                })
                .collect();
            (scenarios, false)
        }
        None => {
            let suite = vcabench_harness::pinned_disruption_suite(args.quick);
            println!(
                "observe: pinned disruption suite ({} runs, {} mode), {} job(s)",
                suite.len(),
                if args.quick { "quick" } else { "full" },
                args.jobs
            );
            (suite, true)
        }
    };
    let report = vcabench_harness::observe_suite(&scenarios, &cfg, args.jobs);
    print!("{}", vcabench_harness::render_observe_report(&report));
    let out_dir = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("observe-results"));
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
        eprintln!("repro: cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    });
    for run in &report.runs {
        let spans_path = out_dir.join(format!("{}.spans.jsonl", run.name));
        std::fs::write(&spans_path, run.diagnosis.timeline.spans_jsonl()).unwrap_or_else(|e| {
            eprintln!("repro: cannot write {}: {e}", spans_path.display());
            std::process::exit(1);
        });
    }
    let artifact = out_dir.join("OBSERVE_report.json");
    let json = vcabench_harness::observe_report_json(&report);
    std::fs::write(&artifact, &json).unwrap_or_else(|e| {
        eprintln!("repro: cannot write {}: {e}", artifact.display());
        std::process::exit(1);
    });
    println!(
        "wrote {} (+ {} span timelines)",
        artifact.display(),
        report.runs.len()
    );
    if let Some(path) = &args.json {
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("repro: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
    if !gated {
        std::process::exit(0);
    }
    let failures = vcabench_harness::gate_failures(&report);
    for f in &failures {
        println!("gate: {f}");
    }
    if failures.is_empty() {
        println!("observe gate: PASS");
        std::process::exit(0);
    }
    println!("observe gate: FAIL ({} run(s))", failures.len());
    std::process::exit(1);
}

/// Offline-diagnose one exported `.events.jsonl` trace.
fn diagnose_trace_file(
    path: &std::path::Path,
    cfg: &vcabench_observe::ObserveConfig,
) -> vcabench_observe::Diagnosis {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("repro: cannot read {}: {e}", path.display());
        std::process::exit(1);
    });
    vcabench_observe::diagnose_jsonl(&text, cfg, None).unwrap_or_else(|e| {
        eprintln!("repro: {}: {e}", path.display());
        std::process::exit(1);
    })
}

/// Labels of every `<label>.events.jsonl` in a trace directory, sorted.
fn trace_labels(dir: &std::path::Path) -> Vec<String> {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| {
        eprintln!("repro: cannot read {}: {e}", dir.display());
        std::process::exit(1);
    });
    let mut labels: Vec<String> = entries
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            Some(name.strip_suffix(".events.jsonl")?.to_string())
        })
        .collect();
    labels.sort();
    labels
}

fn run_diff_command(args: &Args) -> ! {
    let (side_a, side_b) = (&args.trace_paths[0], &args.trace_paths[1]);
    let (path_a, path_b) = (PathBuf::from(side_a), PathBuf::from(side_b));
    let cfg = vcabench_observe::ObserveConfig::default();
    let report = if path_a.is_dir() || path_b.is_dir() {
        if !(path_a.is_dir() && path_b.is_dir()) {
            usage_error("diff sides must both be trace files or both be trace directories");
        }
        let labels_a = trace_labels(&path_a);
        let labels_b = trace_labels(&path_b);
        let shared: Vec<&String> = labels_a.iter().filter(|l| labels_b.contains(l)).collect();
        println!("diff: {} paired run(s), {} job(s)", shared.len(), args.jobs);
        let entries = vcabench_campaign::run_indexed(shared.len(), args.jobs, |i| {
            let label = shared[i];
            let a = diagnose_trace_file(&path_a.join(format!("{label}.events.jsonl")), &cfg);
            let b = diagnose_trace_file(&path_b.join(format!("{label}.events.jsonl")), &cfg);
            vcabench_observe::diff_runs(label, &a, &b)
        });
        vcabench_observe::DiffReport {
            side_a: side_a.clone(),
            side_b: side_b.clone(),
            entries,
            only_a: labels_a
                .iter()
                .filter(|l| !labels_b.contains(l))
                .cloned()
                .collect(),
            only_b: labels_b
                .iter()
                .filter(|l| !labels_a.contains(l))
                .cloned()
                .collect(),
        }
    } else {
        let a = diagnose_trace_file(&path_a, &cfg);
        let b = diagnose_trace_file(&path_b, &cfg);
        let label = path_a
            .file_name()
            .and_then(|n| n.to_str())
            .map(|n| n.strip_suffix(".events.jsonl").unwrap_or(n).to_string())
            .unwrap_or_else(|| "trace".to_string());
        vcabench_observe::DiffReport {
            side_a: side_a.clone(),
            side_b: side_b.clone(),
            entries: vec![vcabench_observe::diff_runs(&label, &a, &b)],
            only_a: Vec::new(),
            only_b: Vec::new(),
        }
    };
    print!("{}", report.render());
    let out_dir = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("diff-results"));
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
        eprintln!("repro: cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    });
    let artifact = out_dir.join("DIFF_report.json");
    std::fs::write(&artifact, report.to_json()).unwrap_or_else(|e| {
        eprintln!("repro: cannot write {}: {e}", artifact.display());
        std::process::exit(1);
    });
    println!("wrote {}", artifact.display());
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if args.profile {
        let duration = if args.quick {
            vcabench_simcore::SimDuration::from_secs(15)
        } else {
            vcabench_simcore::SimDuration::from_secs(60)
        };
        let profiles = vcabench_harness::profile_engine(duration);
        print!("{}", vcabench_harness::render_profile(&profiles));
        if let Some(path) = &args.json {
            std::fs::write(path, vcabench_harness::profile_json(&profiles)).unwrap_or_else(|e| {
                eprintln!("repro: cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote {path}");
        }
        return;
    }
    if args.experiment == "validate-trace" {
        run_validate_trace_command(&args);
    }
    if args.experiment == "observe" {
        run_observe_command(&args);
    }
    if args.experiment == "diff" {
        run_diff_command(&args);
    }
    if args.experiment == "campaign" {
        run_campaign_command(&args);
    }
    if args.experiment == "bench" {
        run_bench_command(&args);
    }
    if args.experiment == "infer" {
        run_infer_command(&args);
    }
    if args.experiment == "identify" {
        run_identify_command(&args);
    }
    let mut json_out = args.json.as_ref().map(|_| serde_json::Map::new());
    let all = args.experiment == "all";
    let want = |name: &str| all || args.experiment == name;

    if want("table2") {
        let cfg = if args.quick {
            table2::Table2Config::quick()
        } else {
            table2::Table2Config::default()
        };
        let r = table2::run(&cfg);
        table2::print(&r);
        emit_json(&mut json_out, "table2", &r);
        println!();
    }
    if want("fig1") {
        let cfg = if args.quick {
            fig1::Fig1Config::quick()
        } else {
            fig1::Fig1Config::default()
        };
        let r = fig1::run_campaign(&cfg, args.jobs);
        fig1::print(&r);
        emit_json(&mut json_out, "fig1", &r);
        println!();
    }
    if want("fig2") {
        let cfg = if args.quick {
            fig2::Fig2Config::quick()
        } else {
            fig2::Fig2Config::default()
        };
        let r = fig2::run(&cfg);
        fig2::print(&r);
        emit_json(&mut json_out, "fig2", &r);
        println!();
    }
    if want("fig3") {
        let cfg = if args.quick {
            fig3::Fig3Config::quick()
        } else {
            fig3::Fig3Config::default()
        };
        let r = fig3::run(&cfg);
        fig3::print(&r);
        emit_json(&mut json_out, "fig3", &r);
        println!();
    }
    if want("fig4") || want("fig5") || want("fig6") {
        let cfg = if args.quick {
            fig4_5_6::DisruptionConfig::quick()
        } else {
            fig4_5_6::DisruptionConfig::default()
        };
        let r = fig4_5_6::run(&cfg);
        fig4_5_6::print(&r);
        emit_json(&mut json_out, "fig4_5_6", &r);
        println!();
    }
    if want("fig8") || want("fig10") {
        let cfg = if args.quick {
            fig8_to_11::VcaCompetitionConfig::quick()
        } else {
            fig8_to_11::VcaCompetitionConfig::default()
        };
        let r = fig8_to_11::run_campaign(&cfg, args.jobs);
        fig8_to_11::print(&r);
        emit_json(&mut json_out, "fig8_10", &r);
        println!();
    }
    if want("fig9") || want("fig11") {
        println!("Fig 9/11: single-run competition timelines (summaries)");
        for (a, b, cap, fig, label) in [
            (
                VcaKind::Zoom,
                VcaKind::Zoom,
                0.5,
                "fig9a",
                "fig9a Zoom-Zoom @0.5",
            ),
            (
                VcaKind::Meet,
                VcaKind::Meet,
                0.5,
                "fig9b",
                "fig9b Meet-Meet @0.5",
            ),
            (
                VcaKind::Teams,
                VcaKind::Zoom,
                1.0,
                "fig11",
                "fig11 Teams-Zoom @1.0",
            ),
        ] {
            let t = fig8_to_11::run_timeline(a, b, cap, 91);
            let from = vcabench_simcore::SimTime::from_secs(90);
            let to = vcabench_simcore::SimTime::from_secs(150);
            let iu = vcabench_harness::TwoPartyOutcome::rate_between(&t.inc_up, from, to);
            let cu = vcabench_harness::TwoPartyOutcome::rate_between(&t.comp_up, from, to);
            let id = vcabench_harness::TwoPartyOutcome::rate_between(&t.inc_down, from, to);
            let cd = vcabench_harness::TwoPartyOutcome::rate_between(&t.comp_down, from, to);
            println!("  {label}: up {iu:.2} vs {cu:.2} | down {id:.2} vs {cd:.2}");
            print!(
                "{}",
                vcabench_harness::render::timeline(
                    "incumbent up",
                    &t.inc_up,
                    cap,
                    Some(30.0),
                    Some(150.0)
                )
            );
            print!(
                "{}",
                vcabench_harness::render::timeline(
                    "competitor up",
                    &t.comp_up,
                    cap,
                    Some(30.0),
                    Some(150.0)
                )
            );
            // Stable snake_case key; the display label rides along inside.
            let key = slug(&format!("{fig} {} {} {cap:.1}", a.name(), b.name()));
            let mut v = serde_json::to_value(&t).expect("serializable timeline");
            if let serde_json::Value::Object(map) = &mut v {
                map.insert(
                    "label".to_string(),
                    serde_json::Value::String(label.to_string()),
                );
            }
            if let Some(map) = json_out.as_mut() {
                map.insert(key, v);
            }
        }
        println!();
    }
    if want("fig12") || want("fig13") {
        let cfg = if args.quick {
            fig12_13::TcpCompetitionConfig::quick()
        } else {
            fig12_13::TcpCompetitionConfig::default()
        };
        let r = fig12_13::run(&cfg);
        fig12_13::print(&r);
        let f13 = fig12_13::run_fig13(131);
        println!(
            "Fig 13: Zoom probe burst vs iPerf3 at 2 Mbps: burst at {:?} s",
            f13.burst_at_secs
        );
        print!(
            "{}",
            vcabench_harness::render::timeline(
                "Zoom downlink",
                &f13.zoom,
                1.6,
                Some(30.0),
                Some(150.0)
            )
        );
        print!(
            "{}",
            vcabench_harness::render::timeline(
                "iPerf3 downlink",
                &f13.iperf,
                1.6,
                Some(30.0),
                Some(150.0)
            )
        );
        emit_json(&mut json_out, "fig12", &r);
        emit_json(&mut json_out, "fig13", &f13);
        println!();
    }
    if want("fig14") {
        let cfg = if args.quick {
            fig14::Fig14Config::quick()
        } else {
            fig14::Fig14Config::default()
        };
        let r = fig14::run(&cfg);
        fig14::print(&r);
        emit_json(&mut json_out, "fig14", &r);
        println!();
    }
    if want("ext") {
        let cfg = if args.quick {
            ext::ImpairmentsConfig::quick()
        } else {
            ext::ImpairmentsConfig::default()
        };
        let r = ext::impairments::run(&cfg);
        ext::impairments::print(&r);
        emit_json(&mut json_out, "ext_impairments", &r);
        let a = ext::ablation::run(3);
        ext::ablation::print(&a);
        emit_json(&mut json_out, "ext_ablation", &a);
        println!();
    }
    if want("fig15") {
        let cfg = if args.quick {
            fig15::Fig15Config::quick()
        } else {
            fig15::Fig15Config::default()
        };
        let r = fig15::run(&cfg);
        fig15::print(&r);
        emit_json(&mut json_out, "fig15", &r);
        println!();
    }

    if let (Some(path), Some(map)) = (args.json, json_out) {
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(
            serde_json::to_string_pretty(&serde_json::Value::Object(map))
                .expect("serialize")
                .as_bytes(),
        )
        .expect("write json output");
        println!("wrote {path}");
    }
}
