//! # vcabench-bench
//!
//! Criterion benchmark crate: `benches/experiments.rs` regenerates each of
//! the paper's tables and figures (reduced presets) as a benchmark target;
//! `benches/substrates.rs` micro-benchmarks the engine, controllers, and
//! metrics. Run with `cargo bench --workspace`.

#![forbid(unsafe_code)]
