//! # vcabench-bench
//!
//! Deterministic benchmark subsystem for the simulation engine, plus the
//! `repro` binary.
//!
//! The paper's measurement matrix (kinds × capacities × seeds) makes
//! end-to-end engine throughput the binding constraint on scenario
//! coverage, so this crate turns "how fast is the engine" into a pinned,
//! versioned, diffable number:
//!
//! - [`scenario`] — the pinned suite (two-party, competition, multiparty ×
//!   Zoom/Meet/Teams) with fixed durations and seeds;
//! - [`mod@measure`] — wall-clock timing over the real campaign glue with
//!   telemetry disabled, reading the engine's own event counters;
//! - [`report`] — schema-versioned `BENCH_<label>.json` artifacts and the
//!   baseline regression gate used by `repro bench --baseline`.
//!
//! `benches/experiments.rs` and `benches/substrates.rs` are the Criterion
//! counterparts for statistics-grade micro-benchmarks; `repro bench` is the
//! no-deps harness cheap enough to gate CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod measure;
pub mod report;
pub mod scenario;

pub use measure::{measure, measure_suite};
pub use report::{
    compare, render_table, BenchReport, Comparison, ScenarioResult, DEFAULT_THRESHOLD, SCHEMA,
};
pub use scenario::{pinned, BenchScenario};

/// Run the pinned suite end to end and assemble the report.
/// `progress` fires after each scenario (the CLI prints a line per run).
pub fn run_bench(label: &str, quick: bool, progress: impl FnMut(&ScenarioResult)) -> BenchReport {
    let suite = scenario::pinned(quick);
    let results = measure::measure_suite(&suite, progress);
    BenchReport::new(label, quick, results)
}
