//! Versioned `BENCH_<label>.json` artifacts and the baseline gate.
//!
//! A [`BenchReport`] is the machine-readable output of one `repro bench`
//! run. The schema is versioned so CI artifacts from different engine
//! versions stay distinguishable; [`compare`] implements the regression
//! gate, matching scenarios by name and failing when wall time grows past a
//! threshold ratio. Event-count mismatches are reported separately — they
//! mean the *workload* changed, which is a correctness question for the
//! golden-trace layer, not a performance regression.

use std::path::Path;

use serde::{Deserialize, Serialize};

/// Schema tag written into every report.
pub const SCHEMA: &str = "vcabench-bench/v1";

/// Default wall-time regression threshold: fail when a scenario takes more
/// than 2x the baseline (generous, so shared-runner noise doesn't flake).
pub const DEFAULT_THRESHOLD: f64 = 2.0;

/// Measured numbers for one pinned scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Pinned scenario name (the baseline join key).
    pub name: String,
    /// Wall-clock seconds for the run.
    pub wall_secs: f64,
    /// Simulated seconds covered.
    pub sim_secs: f64,
    /// Events the engine processed.
    pub events_processed: u64,
    /// Peak pending-event count observed.
    pub peak_queue_depth: u64,
    /// `events_processed / wall_secs`.
    pub events_per_sec: f64,
    /// `sim_secs / wall_secs` (simulated seconds per wall second).
    pub sim_per_wall: f64,
}

/// One full benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Report label (the `<label>` in `BENCH_<label>.json`).
    pub label: String,
    /// `"full"` or `"quick"`.
    pub mode: String,
    /// Per-scenario measurements, in pinned suite order.
    pub scenarios: Vec<ScenarioResult>,
}

impl BenchReport {
    /// Assemble a report.
    pub fn new(label: &str, quick: bool, scenarios: Vec<ScenarioResult>) -> Self {
        BenchReport {
            schema: SCHEMA.to_string(),
            label: label.to_string(),
            mode: if quick { "quick" } else { "full" }.to_string(),
            scenarios,
        }
    }

    /// The artifact filename for this report.
    pub fn filename(&self) -> String {
        format!("BENCH_{}.json", self.label)
    }

    /// Pretty JSON form.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }

    /// Parse a report, rejecting unknown schema versions.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let report: BenchReport = serde_json::from_str(text).map_err(|e| e.to_string())?;
        if report.schema != SCHEMA {
            return Err(format!(
                "unsupported bench schema `{}` (expected `{SCHEMA}`)",
                report.schema
            ));
        }
        Ok(report)
    }

    /// Write `BENCH_<label>.json` under `dir`, returning the path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.filename());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// One scenario whose wall time regressed past the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Scenario name.
    pub name: String,
    /// Baseline wall seconds.
    pub base_wall_secs: f64,
    /// Current wall seconds.
    pub cur_wall_secs: f64,
    /// `cur / base`.
    pub ratio: f64,
}

/// Outcome of diffing a report against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Scenarios past the wall-time threshold (the gate: nonempty = fail).
    pub regressions: Vec<Regression>,
    /// Scenarios whose event counts differ from the baseline (a behavior
    /// change, surfaced as a warning — the golden-trace tests own this).
    pub behavior_changes: Vec<String>,
    /// Scenario names present in only one of the two reports.
    pub unmatched: Vec<String>,
    /// Human-readable per-scenario lines, in current-report order.
    pub lines: Vec<String>,
}

impl Comparison {
    /// True when the regression gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Diff `current` against `baseline` with the given wall-time ratio
/// threshold (>= 1.0; see [`DEFAULT_THRESHOLD`]).
pub fn compare(current: &BenchReport, baseline: &BenchReport, threshold: f64) -> Comparison {
    let mut cmp = Comparison::default();
    for cur in &current.scenarios {
        let Some(base) = baseline.scenarios.iter().find(|b| b.name == cur.name) else {
            cmp.unmatched.push(cur.name.clone());
            continue;
        };
        let ratio = cur.wall_secs / base.wall_secs.max(1e-9);
        let mut line = format!(
            "{:<20} wall {:>8.3}s vs {:>8.3}s ({:>5.2}x)",
            cur.name, cur.wall_secs, base.wall_secs, ratio
        );
        if cur.events_processed != base.events_processed {
            cmp.behavior_changes.push(cur.name.clone());
            line.push_str(&format!(
                "  [events {} -> {}]",
                base.events_processed, cur.events_processed
            ));
        }
        if ratio > threshold {
            cmp.regressions.push(Regression {
                name: cur.name.clone(),
                base_wall_secs: base.wall_secs,
                cur_wall_secs: cur.wall_secs,
                ratio,
            });
            line.push_str("  REGRESSION");
        }
        cmp.lines.push(line);
    }
    for base in &baseline.scenarios {
        if !current.scenarios.iter().any(|c| c.name == base.name) {
            cmp.unmatched.push(base.name.clone());
        }
    }
    cmp
}

/// Render a report as an aligned text table.
pub fn render_table(report: &BenchReport) -> String {
    let mut out = format!(
        "{:<20} {:>9} {:>12} {:>14} {:>10} {:>10}\n",
        "scenario", "wall_s", "events", "events/s", "sim_s/s", "peak_q"
    );
    for r in &report.scenarios {
        out.push_str(&format!(
            "{:<20} {:>9.3} {:>12} {:>14.0} {:>10.1} {:>10}\n",
            r.name,
            r.wall_secs,
            r.events_processed,
            r.events_per_sec,
            r.sim_per_wall,
            r.peak_queue_depth
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, wall: f64, events: u64) -> ScenarioResult {
        ScenarioResult {
            name: name.to_string(),
            wall_secs: wall,
            sim_secs: 15.0,
            events_processed: events,
            peak_queue_depth: 8,
            events_per_sec: events as f64 / wall,
            sim_per_wall: 15.0 / wall,
        }
    }

    #[test]
    fn report_round_trips() {
        let report = BenchReport::new("quick", true, vec![result("two_party_zoom", 0.25, 40_000)]);
        assert_eq!(report.filename(), "BENCH_quick.json");
        let back = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut report = BenchReport::new("x", false, vec![]);
        report.schema = "vcabench-bench/v999".to_string();
        let err = BenchReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("v999"), "{err}");
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_past_it() {
        let base = BenchReport::new("base", true, vec![result("a", 1.0, 100)]);
        let ok = BenchReport::new("cur", true, vec![result("a", 1.9, 100)]);
        let cmp = compare(&ok, &base, 2.0);
        assert!(cmp.passed(), "{:?}", cmp.regressions);
        assert!(cmp.behavior_changes.is_empty());

        let slow = BenchReport::new("cur", true, vec![result("a", 2.1, 100)]);
        let cmp = compare(&slow, &base, 2.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions[0].name, "a");
        assert!(cmp.regressions[0].ratio > 2.0);
    }

    #[test]
    fn event_count_mismatch_is_a_warning_not_a_failure() {
        let base = BenchReport::new("base", true, vec![result("a", 1.0, 100)]);
        let cur = BenchReport::new("cur", true, vec![result("a", 1.0, 150)]);
        let cmp = compare(&cur, &base, 2.0);
        assert!(cmp.passed());
        assert_eq!(cmp.behavior_changes, vec!["a".to_string()]);
    }

    #[test]
    fn unmatched_scenarios_are_surfaced_both_ways() {
        let base = BenchReport::new("base", true, vec![result("a", 1.0, 1), result("b", 1.0, 1)]);
        let cur = BenchReport::new("cur", true, vec![result("a", 1.0, 1), result("c", 1.0, 1)]);
        let cmp = compare(&cur, &base, 2.0);
        assert_eq!(cmp.unmatched, vec!["c".to_string(), "b".to_string()]);
    }
}
