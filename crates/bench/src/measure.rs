//! Wall-clock measurement of pinned scenarios.
//!
//! Each scenario runs once through the real campaign glue
//! ([`vcabench_harness::run_spec_metered`]) with telemetry disabled, so the
//! measured path is exactly the hot path every campaign run takes. The
//! engine itself supplies the event counters ([`EngineStats`]); this module
//! only adds the stopwatch.

use std::time::Instant;

use vcabench_harness::{
    run_spec_fingerprint_metered, run_spec_infer_metered, run_spec_metered,
    run_spec_observe_metered,
};
use vcabench_netsim::EngineStats;
use vcabench_observe::ObserveConfig;
use vcabench_telemetry::Telemetry;

use crate::report::ScenarioResult;
use crate::scenario::BenchScenario;

/// Run one scenario and time it. Inference-stage scenarios run through
/// [`run_spec_infer_metered`] instead, with the passive tap bank attached;
/// identification-stage scenarios through [`run_spec_fingerprint_metered`],
/// with the fingerprint accumulators attached; observability-stage
/// scenarios through [`run_spec_observe_metered`], with the streaming
/// span-deriving diagnoser attached; boosted-inference scenarios run the
/// tap bank *and* the builtin GBT ensemble over every extracted window, so
/// the stopwatch covers tree-walk prediction cost too.
pub fn measure(sc: &BenchScenario) -> ScenarioResult {
    let t0 = Instant::now();
    let engine = if sc.gbt {
        let (outcome, engine) = run_spec_infer_metered(&sc.spec);
        let model = vcabench_infer::GbtModel::builtin();
        for w in outcome.send.iter().chain(outcome.recv.iter()) {
            std::hint::black_box(vcabench_infer::Estimator::estimate(&model, w));
        }
        engine
    } else if sc.infer {
        run_spec_infer_metered(&sc.spec).1
    } else if sc.identify {
        run_spec_fingerprint_metered(&sc.spec).1
    } else if sc.observe {
        run_spec_observe_metered(&sc.spec, &ObserveConfig::default()).1
    } else {
        run_spec_metered(&sc.spec, &Telemetry::disabled()).1
    };
    let wall_secs = t0.elapsed().as_secs_f64();
    from_parts(sc, engine, wall_secs)
}

/// Assemble a [`ScenarioResult`] from raw counters (separated from
/// [`measure`] so the derived-rate arithmetic is testable without a run).
pub fn from_parts(sc: &BenchScenario, engine: EngineStats, wall_secs: f64) -> ScenarioResult {
    // A zero-duration wall clock only happens on degenerate workloads;
    // clamp so the derived rates stay finite.
    let wall = wall_secs.max(1e-9);
    ScenarioResult {
        name: sc.name.clone(),
        wall_secs,
        sim_secs: sc.sim_secs,
        events_processed: engine.events_processed,
        peak_queue_depth: engine.peak_queue_depth,
        events_per_sec: engine.events_processed as f64 / wall,
        sim_per_wall: sc.sim_secs / wall,
    }
}

/// Run the whole suite, invoking `progress` after each scenario completes.
pub fn measure_suite(
    suite: &[BenchScenario],
    mut progress: impl FnMut(&ScenarioResult),
) -> Vec<ScenarioResult> {
    let mut out = Vec::with_capacity(suite.len());
    for sc in suite {
        let r = measure(sc);
        progress(&r);
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::pinned;

    #[test]
    fn derived_rates_are_consistent() {
        let sc = &pinned(true)[0];
        let engine = EngineStats {
            events_processed: 1000,
            peak_queue_depth: 32,
        };
        let r = from_parts(sc, engine, 0.5);
        assert_eq!(r.events_processed, 1000);
        assert_eq!(r.peak_queue_depth, 32);
        assert!((r.events_per_sec - 2000.0).abs() < 1e-9);
        assert!((r.sim_per_wall - sc.sim_secs / 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_clock_stays_finite() {
        let sc = &pinned(true)[0];
        let engine = EngineStats {
            events_processed: 10,
            peak_queue_depth: 1,
        };
        let r = from_parts(sc, engine, 0.0);
        assert!(r.events_per_sec.is_finite());
        assert!(r.sim_per_wall.is_finite());
    }

    #[test]
    fn observe_stage_measures_the_same_workload() {
        // The observe recorder is a passive tap: the measured engine
        // counters must match the plain run of the same spec exactly,
        // or the overhead number would compare different workloads.
        let sc = pinned(true)
            .into_iter()
            .find(|s| s.observe)
            .expect("suite has an observe stage");
        let observed = measure(&sc);
        let plain = vcabench_harness::run_spec_metered(
            &sc.spec,
            &vcabench_telemetry::Telemetry::disabled(),
        )
        .1;
        assert_eq!(observed.events_processed, plain.events_processed);
        assert_eq!(observed.peak_queue_depth, plain.peak_queue_depth);
        assert!(observed.events_processed > 1000);
    }

    #[test]
    fn observe_overhead_stays_within_gate() {
        // The streaming diagnoser must stay a cheap tap: best-of-5
        // wall time with the observe recorder attached vs best-of-5
        // plain, interleaved so ambient noise hits both sides alike.
        // The 1.1x gate bounds the recorder's hot-path overhead; it is
        // a claim about optimized code, so unoptimized (debug) runs get
        // a looser bound — the recorder's constant factors are not what
        // debug builds measure.
        let gate = if cfg!(debug_assertions) { 1.5 } else { 1.1 };
        let sc = pinned(true)
            .into_iter()
            .find(|s| s.observe)
            .expect("suite has an observe stage");
        let mut with_observe = f64::INFINITY;
        let mut plain = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            run_spec_observe_metered(&sc.spec, &ObserveConfig::default());
            with_observe = with_observe.min(t0.elapsed().as_secs_f64());
            let t1 = Instant::now();
            run_spec_metered(&sc.spec, &Telemetry::disabled());
            plain = plain.min(t1.elapsed().as_secs_f64());
        }
        let ratio = with_observe / plain.max(1e-9);
        assert!(
            ratio <= gate,
            "observe recorder overhead {ratio:.3}x exceeds the {gate}x gate \
             (observed {with_observe:.4}s vs plain {plain:.4}s)"
        );
    }

    #[test]
    fn gbt_stage_measures_the_same_workload() {
        // The GBT estimator runs after the simulation over already-sealed
        // windows: the measured engine counters must match the plain run
        // of the same spec exactly.
        let sc = pinned(true)
            .into_iter()
            .find(|s| s.gbt)
            .expect("suite has a gbt stage");
        let boosted = measure(&sc);
        let plain = vcabench_harness::run_spec_metered(
            &sc.spec,
            &vcabench_telemetry::Telemetry::disabled(),
        )
        .1;
        assert_eq!(boosted.events_processed, plain.events_processed);
        assert_eq!(boosted.peak_queue_depth, plain.peak_queue_depth);
        assert!(boosted.events_processed > 1000);
    }

    #[test]
    fn measured_run_counts_events() {
        // The smallest pinned scenario, measured for real: the engine must
        // report a non-trivial number of processed events and a bounded
        // queue depth.
        let sc = &pinned(true)[0];
        let r = measure(sc);
        assert!(r.events_processed > 1000, "two-party quick run is busy");
        assert!(r.peak_queue_depth > 0);
        assert!(r.wall_secs > 0.0);
    }
}
