//! Pinned benchmark scenarios.
//!
//! The benchmark surface is a fixed set of scenarios — two-party,
//! competition, and multiparty, one of each per VCA kind — with pinned
//! shaping profiles, durations, and seeds. Pinning matters twice over:
//! wall-time numbers are only comparable across engine versions if the
//! simulated workload is byte-identical, and the baseline gate (see
//! [`crate::report`]) matches scenarios by name.

use vcabench_campaign::{
    CompetitionSpec, CompetitorSpec, MultipartySpec, ScenarioSpec, TwoPartySpec,
};
use vcabench_netsim::RateProfile;
use vcabench_vca::VcaKind;

/// One named benchmark workload: a campaign [`ScenarioSpec`] plus the
/// simulated length it covers (used for the sim-seconds-per-wall-second
/// figure of merit).
#[derive(Debug, Clone)]
pub struct BenchScenario {
    /// Stable scenario name (`two_party_zoom`, `competition_meet`, …).
    pub name: String,
    /// The workload to run.
    pub spec: ScenarioSpec,
    /// Simulated seconds the run covers.
    pub sim_secs: f64,
    /// Run with the passive-inference extractors attached (the
    /// `vcabench-infer` tap bank); measures the streaming-extraction
    /// overhead on top of the plain engine hot path.
    pub infer: bool,
    /// Run with the flow-level fingerprint bank attached (the
    /// `vcabench-fingerprint` accumulators); measures the classifier
    /// feature-extraction overhead on top of the plain engine hot path.
    pub identify: bool,
    /// Run with the streaming span-deriving diagnoser attached (the
    /// `vcabench-observe` recorder); measures the observability
    /// overhead on top of the plain engine hot path.
    pub observe: bool,
    /// Run with the passive tap bank attached *and* the builtin GBT
    /// estimator applied to every extracted window; measures the tree
    /// ensemble's inference overhead on top of the extraction path.
    pub gbt: bool,
}

/// All three VCA kinds in pinned order.
const KINDS: [VcaKind; 3] = [VcaKind::Zoom, VcaKind::Meet, VcaKind::Teams];

/// The pinned benchmark suite. `quick` shrinks every duration (CI and
/// smoke runs); the scenario *shapes* are identical in both modes.
pub fn pinned(quick: bool) -> Vec<BenchScenario> {
    let mut out = Vec::new();
    for kind in KINDS {
        let tag = vcabench_campaign::slug(kind.name());
        let duration_secs = if quick { 15.0 } else { 60.0 };
        out.push(BenchScenario {
            name: format!("two_party_{tag}"),
            spec: ScenarioSpec::TwoParty(TwoPartySpec {
                kind,
                up: RateProfile::constant_mbps(1000.0),
                down: RateProfile::constant_mbps(1000.0),
                duration_secs,
                seed: 1,
                knobs: None,
            }),
            sim_secs: duration_secs,
            infer: false,
            identify: false,
            observe: false,
            gbt: false,
        });
    }
    for kind in KINDS {
        let tag = vcabench_campaign::slug(kind.name());
        let (start, dur, total) = if quick {
            (5.0, 10.0, 20.0)
        } else {
            (10.0, 40.0, 60.0)
        };
        out.push(BenchScenario {
            name: format!("competition_{tag}"),
            spec: ScenarioSpec::Competition(CompetitionSpec {
                incumbent: kind,
                competitor: CompetitorSpec::Vca(kind),
                capacity_mbps: 2.5,
                competitor_start_secs: Some(start),
                competitor_duration_secs: Some(dur),
                total_secs: Some(total),
                seed: 1,
            }),
            sim_secs: total,
            infer: false,
            identify: false,
            observe: false,
            gbt: false,
        });
    }
    for kind in KINDS {
        let tag = vcabench_campaign::slug(kind.name());
        let duration_secs = if quick { 10.0 } else { 40.0 };
        out.push(BenchScenario {
            name: format!("multiparty_{tag}"),
            spec: ScenarioSpec::Multiparty(MultipartySpec {
                kind,
                n: 4,
                pin_c1: Some(false),
                duration_secs,
                seed: 1,
            }),
            sim_secs: duration_secs,
            infer: false,
            identify: false,
            observe: false,
            gbt: false,
        });
    }
    // The inference-stage scenario: a shaped two-party Zoom call (FEC-heavy
    // and freeze-prone) run with the passive tap bank attached, so the
    // benchmark gate tracks the extractors' hot-path overhead too.
    let duration_secs = if quick { 10.0 } else { 30.0 };
    out.push(BenchScenario {
        name: "infer_two_party_zoom".to_string(),
        spec: ScenarioSpec::TwoParty(TwoPartySpec {
            kind: VcaKind::Zoom,
            up: RateProfile::constant_mbps(0.5),
            down: RateProfile::constant_mbps(1000.0),
            duration_secs,
            seed: 1,
            knobs: None,
        }),
        sim_secs: duration_secs,
        infer: true,
        identify: false,
        observe: false,
        gbt: false,
    });
    // The identification-stage scenario: a mixed-shaping two-party Teams
    // call (uplink throttled, downlink open — the two flow accumulators
    // see very different traffic) run with the fingerprint bank attached,
    // so the benchmark gate tracks the classifier's feature-extraction
    // overhead too.
    let duration_secs = if quick { 10.0 } else { 30.0 };
    out.push(BenchScenario {
        name: "identify_two_party_mixed".to_string(),
        spec: ScenarioSpec::TwoParty(TwoPartySpec {
            kind: VcaKind::Teams,
            up: RateProfile::constant_mbps(0.7),
            down: RateProfile::constant_mbps(1000.0),
            duration_secs,
            seed: 1,
            knobs: None,
        }),
        sim_secs: duration_secs,
        infer: false,
        identify: true,
        observe: false,
        gbt: false,
    });
    // The observability-stage scenario: the same shaped two-party Zoom
    // call as the inference stage (queue- and freeze-heavy, so the span
    // builder sees every kind of transition) run with the streaming
    // diagnoser attached, so the benchmark gate tracks the observe
    // recorder's hot-path overhead too.
    let duration_secs = if quick { 10.0 } else { 30.0 };
    out.push(BenchScenario {
        name: "observe_two_party_zoom".to_string(),
        spec: ScenarioSpec::TwoParty(TwoPartySpec {
            kind: VcaKind::Zoom,
            up: RateProfile::constant_mbps(0.5),
            down: RateProfile::constant_mbps(1000.0),
            duration_secs,
            seed: 1,
            knobs: None,
        }),
        sim_secs: duration_secs,
        infer: false,
        identify: false,
        observe: true,
        gbt: false,
    });
    // The boosted-inference scenario: the same shaped two-party Zoom call
    // as the inference stage, but with the builtin GBT ensemble applied to
    // every extracted window, so the benchmark gate tracks the tree
    // ensemble's prediction overhead on top of the extraction path.
    let duration_secs = if quick { 10.0 } else { 30.0 };
    out.push(BenchScenario {
        name: "gbt_two_party_zoom".to_string(),
        spec: ScenarioSpec::TwoParty(TwoPartySpec {
            kind: VcaKind::Zoom,
            up: RateProfile::constant_mbps(0.5),
            down: RateProfile::constant_mbps(1000.0),
            duration_secs,
            seed: 1,
            knobs: None,
        }),
        sim_secs: duration_secs,
        infer: false,
        identify: false,
        observe: false,
        gbt: true,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_pinned_and_valid() {
        for quick in [false, true] {
            let suite = pinned(quick);
            assert_eq!(suite.len(), 13);
            let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
            assert_eq!(
                names,
                [
                    "two_party_zoom",
                    "two_party_meet",
                    "two_party_teams",
                    "competition_zoom",
                    "competition_meet",
                    "competition_teams",
                    "multiparty_zoom",
                    "multiparty_meet",
                    "multiparty_teams",
                    "infer_two_party_zoom",
                    "identify_two_party_mixed",
                    "observe_two_party_zoom",
                    "gbt_two_party_zoom",
                ]
            );
            for s in &suite {
                s.spec.validate().expect("pinned spec valid");
                assert!(s.sim_secs > 0.0);
            }
            // Exactly one scenario exercises the inference stage.
            let infer: Vec<&str> = suite
                .iter()
                .filter(|s| s.infer)
                .map(|s| s.name.as_str())
                .collect();
            assert_eq!(infer, ["infer_two_party_zoom"]);
            // ... and exactly one the identification stage.
            let identify: Vec<&str> = suite
                .iter()
                .filter(|s| s.identify)
                .map(|s| s.name.as_str())
                .collect();
            assert_eq!(identify, ["identify_two_party_mixed"]);
            // ... and exactly one the observability stage.
            let observe: Vec<&str> = suite
                .iter()
                .filter(|s| s.observe)
                .map(|s| s.name.as_str())
                .collect();
            assert_eq!(observe, ["observe_two_party_zoom"]);
            // ... and exactly one the boosted-inference stage.
            let gbt: Vec<&str> = suite
                .iter()
                .filter(|s| s.gbt)
                .map(|s| s.name.as_str())
                .collect();
            assert_eq!(gbt, ["gbt_two_party_zoom"]);
            // No scenario runs more than one bank: the per-stage overhead
            // measurements must stay attributable.
            assert!(suite.iter().all(|s| usize::from(s.infer)
                + usize::from(s.identify)
                + usize::from(s.observe)
                + usize::from(s.gbt)
                <= 1));
        }
    }

    #[test]
    fn quick_mode_only_shrinks_durations() {
        for (full, quick) in pinned(false).iter().zip(pinned(true).iter()) {
            assert_eq!(full.name, quick.name);
            assert_eq!(full.spec.seed(), quick.spec.seed());
            assert!(quick.sim_secs < full.sim_secs);
        }
    }
}
