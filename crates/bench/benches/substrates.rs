//! Micro-benchmarks of the substrate components (ablation-style): the event
//! engine, the packet link, the congestion controllers, and TCP.
//!
//! These establish that the simulator itself is not the bottleneck of the
//! experiment pipeline, and give per-component regression baselines.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vcabench_harness::run::{run_two_party, TwoPartyOutcome};
use vcabench_netsim::RateProfile;
use vcabench_simcore::{SimDuration, SimTime};

fn bench_two_party_minute(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.sample_size(10);
    for kind in vcabench_vca::VcaKind::NATIVE {
        g.bench_function(format!("one_minute_call_{}", kind.name()), |b| {
            b.iter(|| {
                run_two_party(
                    kind,
                    RateProfile::constant_mbps(1000.0),
                    RateProfile::constant_mbps(1000.0),
                    SimDuration::from_secs(60),
                    1,
                )
            })
        });
    }
    g.finish();
}

fn bench_controllers(c: &mut Criterion) {
    use vcabench_congestion::*;
    let mut g = c.benchmark_group("controllers");
    g.bench_function("gcc_10k_reports", |b| {
        b.iter_batched(
            || {
                (
                    GccController::new(GccConfig::default()),
                    SyntheticLink::new(1.0),
                )
            },
            |(mut cc, mut link)| {
                for i in 0..10_000u64 {
                    let fb = link.step(
                        SimTime::from_millis(i * 100),
                        cc.target_mbps(),
                        SimDuration::from_millis(100),
                    );
                    cc.on_report(&fb);
                }
                cc.target_mbps()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("fbra_10k_reports", |b| {
        b.iter_batched(
            || {
                (
                    FbraController::new(FbraConfig::default()),
                    SyntheticLink::new(1.0),
                )
            },
            |(mut cc, mut link)| {
                for i in 0..10_000u64 {
                    let fb = link.step(
                        SimTime::from_millis(i * 100),
                        cc.target_mbps(),
                        SimDuration::from_millis(100),
                    );
                    cc.on_report(&fb);
                }
                cc.target_mbps()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_metric(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics");
    // A full 5-minute series at 100 ms bins.
    let series: Vec<f64> = (0..3000).map(|i| 1.0 + 0.1 * ((i % 7) as f64)).collect();
    g.bench_function("rolling_median_ttr", |b| {
        b.iter(|| {
            vcabench_stats::time_to_recovery(
                &series,
                SimDuration::from_millis(100),
                SimTime::from_secs(60),
                SimTime::from_secs(90),
            )
        })
    });
    g.bench_function("rate_between", |b| {
        b.iter(|| {
            TwoPartyOutcome::rate_between(&series, SimTime::from_secs(10), SimTime::from_secs(290))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_two_party_minute,
    bench_controllers,
    bench_metric
);
criterion_main!(benches);
