//! Criterion benchmarks, one group per table/figure of the paper.
//!
//! Each bench regenerates the corresponding experiment on a reduced preset
//! and reports the wall-clock cost of the full simulation pipeline. Run
//! `cargo bench -p vcabench-bench` (or `cargo bench --workspace`).
//!
//! These are throughput benchmarks of the *reproduction pipeline*; the
//! experiment outputs themselves (paper-vs-measured) are produced by the
//! `repro` binary and recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use vcabench_harness::experiments::*;

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("unconstrained_utilization", |b| {
        b.iter(|| table2::run(&table2::Table2Config::quick()))
    });
    g.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    let cfg = fig1::Fig1Config {
        caps: vec![0.5, 1.0, 10.0],
        call: vcabench_simcore::SimDuration::from_secs(60),
        reps: 1,
        seed: 11,
    };
    g.bench_function("uplink_sweep", |b| {
        b.iter(|| fig1::run_sweep(&cfg, &vcabench_vca::VcaKind::NATIVE, fig1::Direction::Up))
    });
    g.bench_function("downlink_sweep", |b| {
        b.iter(|| fig1::run_sweep(&cfg, &vcabench_vca::VcaKind::NATIVE, fig1::Direction::Down))
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    let cfg = fig2::Fig2Config {
        caps: vec![0.5, 1.0],
        call: vcabench_simcore::SimDuration::from_secs(60),
        reps: 1,
        seed: 21,
    };
    g.bench_function("encoding_parameters", |b| {
        b.iter(|| fig2::run_direction(&cfg, fig1::Direction::Down))
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    let cfg = fig3::Fig3Config {
        caps: vec![0.3, 1.0],
        call: vcabench_simcore::SimDuration::from_secs(60),
        reps: 1,
        seed: 31,
    };
    g.bench_function("freeze_and_fir", |b| b.iter(|| fig3::run(&cfg)));
    g.finish();
}

fn bench_fig4_5_6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_5_6");
    g.sample_size(10);
    let cfg = fig4_5_6::DisruptionConfig {
        levels: vec![0.25],
        call: vcabench_simcore::SimDuration::from_secs(150),
        start: vcabench_simcore::SimDuration::from_secs(40),
        length: vcabench_simcore::SimDuration::from_secs(30),
        reps: 1,
        seed: 41,
    };
    g.bench_function("uplink_disruption", |b| {
        b.iter(|| fig4_5_6::run_direction(&cfg, fig1::Direction::Up))
    });
    g.bench_function("downlink_disruption", |b| {
        b.iter(|| fig4_5_6::run_direction(&cfg, fig1::Direction::Down))
    });
    g.finish();
}

fn bench_fig8_to_11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_to_11");
    g.sample_size(10);
    g.bench_function("vca_vs_vca_timeline", |b| {
        b.iter(|| {
            fig8_to_11::run_timeline(
                vcabench_vca::VcaKind::Zoom,
                vcabench_vca::VcaKind::Meet,
                0.5,
                81,
            )
        })
    });
    g.finish();
}

fn bench_fig12_13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_13");
    g.sample_size(10);
    g.bench_function("zoom_vs_iperf", |b| b.iter(|| fig12_13::run_fig13(131)));
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("zoom_vs_netflix", |b| {
        b.iter(|| fig14::run(&fig14::Fig14Config::quick()))
    });
    g.finish();
}

fn bench_fig15(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    let cfg = fig15::Fig15Config {
        sizes: vec![4, 8],
        call: vcabench_simcore::SimDuration::from_secs(40),
        reps: 1,
        seed: 151,
    };
    g.bench_function("modalities", |b| b.iter(|| fig15::run(&cfg)));
    g.finish();
}

criterion_group!(
    benches,
    bench_table2,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_fig4_5_6,
    bench_fig8_to_11,
    bench_fig12_13,
    bench_fig14,
    bench_fig15,
);
criterion_main!(benches);
