//! `repro` argument handling: help text advertises the telemetry flags,
//! malformed invocations exit 2, and `validate-trace` gates on schema.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn temp_file(tag: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("vcabench-cli-{tag}-{}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn help_advertises_telemetry_surface() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "--trace-dir",
        "validate-trace",
        "--profile",
        "campaign",
        "bench",
        "--baseline",
        "--threshold",
        "infer",
        "--fit",
        "--max-bitrate-err",
        "--min-freeze-recall",
        "identify",
        "--identify",
        "--min-id-accuracy",
        "--fit-gbt",
        "--estimator",
    ] {
        assert!(text.contains(needle), "help missing `{needle}`:\n{text}");
    }
}

#[test]
fn malformed_invocations_exit_2() {
    let cases: &[&[&str]] = &[
        &["--trace-dir"],                     // missing value
        &["table2", "--trace-dir", "/tmp/x"], // not the campaign subcommand
        &["--trace-dir", "/tmp/x"],           // implicit `all` is not campaign
        &["--profile", "table2"],             // --profile is standalone
        &["validate-trace"],                  // needs at least one file
        &["campaign"],                        // needs a spec file
        &["no-such-experiment"],
        &["--jobs", "zero"],
        &["--jobs", "0"],
        &["--baseline"],                     // missing value
        &["table2", "--baseline", "/tmp/x"], // not the bench subcommand
        &["table2", "--label", "x"],         // not the bench subcommand
        &["--threshold", "0.5"],             // ratio must be >= 1.0
        &["--threshold", "nan"],
        &["bench", "extra-positional"],
        &["infer", "--no-such-flag"],         // unknown flag
        &["infer", "a.json", "b.json"],       // at most one spec file
        &["infer", "--fit"],                  // missing value
        &["infer", "--max-bitrate-err"],      // missing value
        &["infer", "--max-bitrate-err", "0"], // must be > 0
        &["infer", "--max-bitrate-err", "nan"],
        &["infer", "--min-freeze-recall", "1.5"], // must be in [0, 1]
        &["infer", "--min-freeze-recall", "-0.1"],
        &["bench", "--fit", "/tmp/x"], // not the infer subcommand
        &["table2", "--max-bitrate-err", "0.1"], // not the infer subcommand
        &["campaign", "x.json", "--min-freeze-recall", "0.8"], // ditto
        &["infer", "--baseline", "/tmp/x"], // bench-only flag on infer
        &["infer", "--trace-dir", "/tmp/x"], // campaign-only flag on infer
        &["identify", "a.json", "b.json"], // at most one spec file
        &["identify", "--fit"],        // missing value
        &["identify", "--min-id-accuracy"], // missing value
        &["identify", "--min-id-accuracy", "1.5"], // must be in [0, 1]
        &["identify", "--min-id-accuracy", "-0.1"],
        &["identify", "--min-id-accuracy", "nan"],
        &["identify", "--max-bitrate-err", "0.1"], // infer-only gate flag
        &["identify", "--min-freeze-recall", "0.8"], // ditto
        &["identify", "--identify"],               // infer-only flag
        &["identify", "--baseline", "/tmp/x"],     // bench-only flag
        &["identify", "--trace-dir", "/tmp/x"],    // campaign-only flag
        &["bench", "--identify"],                  // not the infer subcommand
        &["table2", "--identify"],                 // ditto
        &["infer", "--min-id-accuracy", "0.9"],    // identify-only flag on infer
        &["bench", "--min-id-accuracy", "0.9"],    // ditto
        &["infer", "--identify", "--max-bitrate-err", "0.1"], // routed gate only
        &["infer", "--identify", "--min-freeze-recall", "0.8"], // ditto
        &["infer", "--fit-gbt"],                   // missing value
        &["infer", "--estimator"],                 // missing value
        &["infer", "--estimator", "no-such-model"], // unknown estimator
        &["infer", "--estimator", "GBT"],          // names are lowercase
        &["bench", "--fit-gbt", "/tmp/x"],         // not the infer subcommand
        &["table2", "--fit-gbt", "/tmp/x"],        // ditto
        &["bench", "--estimator", "gbt"],          // not the infer subcommand
        &["campaign", "x.json", "--estimator", "gbt"], // ditto
        &["infer", "--fit", "/tmp/a", "--fit-gbt", "/tmp/b"], // one model per run
        &["infer", "--identify", "--fit-gbt", "/tmp/x"], // routed mode fits nothing
        &["infer", "--identify", "--estimator", "gbt"], // routed gate only
        &["identify", "--estimator", "gbt"],       // infer-only flag
        &["identify", "--fit-gbt", "/tmp/x"],      // infer-only flag
    ];
    for args in cases {
        let out = repro(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "expected exit 2 for {args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn validate_trace_accepts_valid_and_rejects_invalid() {
    let good = temp_file(
        "good.jsonl",
        "{\"t\":1,\"kind\":\"fir\",\"client\":0,\"ssrc\":5,\"dir\":\"sent\"}\n",
    );
    let out = repro(&["validate-trace", good.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 events OK"));

    let bad = temp_file("bad.jsonl", "{\"t\":1,\"kind\":\"no_such_kind\"}\n");
    let out = repro(&["validate-trace", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{:?}", out);

    let missing = repro(&["validate-trace", "/no/such/file.jsonl"]);
    assert_eq!(missing.status.code(), Some(1));

    let _ = std::fs::remove_file(&good);
    let _ = std::fs::remove_file(&bad);
}
