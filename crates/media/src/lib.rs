//! # vcabench-media
//!
//! Video pipeline models: a calibrated codec rate model, the per-VCA encoder
//! adaptation policies of §3.2 (Teams single-stream QP/width, Meet simulcast,
//! Zoom SVC), a seeded talking-head source with resolution-dependent keyframe
//! floors, and the receive-side freeze/FIR machinery with the paper's exact
//! freeze rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod policy;
pub mod receiver;
pub mod source;

pub use codec::{bitrate_mbps, qp_for_bitrate, EncodingParams, LADDER};
pub use policy::{EncoderPolicy, MeetPolicy, StreamPlan, TeamsPolicy, ZoomPolicy};
pub use receiver::{AssembleEvent, FrameAssembler, FreezeDetector};
pub use source::{SourceFrame, TalkingHeadSource};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The rate model is monotone in each parameter direction.
        #[test]
        fn rate_model_monotone(qp in 10.0f64..50.0, fps in 5.0f64..60.0) {
            let base = bitrate_mbps(640, 360, fps, qp);
            prop_assert!(bitrate_mbps(1280, 720, fps, qp) > base);
            prop_assert!(bitrate_mbps(640, 360, fps, qp + 1.0) < base);
            prop_assert!(bitrate_mbps(640, 360, fps + 1.0, qp) > base);
        }

        /// Inverse model: encoding at the returned QP hits the target within
        /// rounding when unclamped.
        #[test]
        fn qp_inversion(target in 0.05f64..3.0) {
            let qp = qp_for_bitrate(640, 360, 30.0, target);
            if qp > 10.01 && qp < 49.99 {
                let got = bitrate_mbps(640, 360, 30.0, qp);
                prop_assert!((got - target).abs() / target < 1e-6);
            }
        }

        /// Every policy returns at least one stream, all with positive rates
        /// that never wildly exceed the target.
        #[test]
        fn policies_sane(target in 0.05f64..3.0) {
            let mut policies: Vec<Box<dyn EncoderPolicy>> = vec![
                Box::new(TeamsPolicy::default()),
                Box::new(MeetPolicy::default()),
                Box::new(ZoomPolicy::default()),
            ];
            for p in policies.iter_mut() {
                let plans = p.plan(target);
                prop_assert!(!plans.is_empty(), "{} returned no streams", p.name());
                for s in &plans {
                    prop_assert!(s.rate_mbps > 0.0);
                    prop_assert!(s.params.fps >= 1.0 && s.params.fps <= 60.0);
                    prop_assert!(s.params.width >= 160);
                }
                let total: f64 = plans.iter().map(|s| s.rate_mbps).sum();
                // Policies may quantize above the target (ladder rungs), and
                // Teams' emulated low-rate bug deliberately overshoots at
                // starved targets (QP-50 720p ≈ 0.30 Mbps), but nothing may
                // exceed that worst case.
                prop_assert!(total <= (target * 1.6).max(0.40), "{}: {total} vs {target}", p.name());
            }
        }

        /// Zoom's layer count is monotone in the target rate.
        #[test]
        fn zoom_layers_monotone(a in 0.05f64..2.0, b in 0.05f64..2.0) {
            let p = ZoomPolicy::default();
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(p.layers_for(lo) <= p.layers_for(hi));
        }

        /// Source long-run rate tracks the target across targets and fps.
        #[test]
        fn source_rate_tracks(target in 0.1f64..2.0, fps in 10.0f64..30.0, seed in 0u64..50) {
            let mut s = TalkingHeadSource::new(vcabench_simcore::SimRng::seed_from_u64(seed));
            let n = 2000usize;
            let total: usize = (0..n).map(|_| s.next_frame(target, fps, 640, 360).bytes).sum();
            let rate = total as f64 * 8.0 * fps / n as f64 / 1e6;
            prop_assert!((rate - target).abs() / target < 0.25, "rate {rate} target {target}");
        }
    }
}
