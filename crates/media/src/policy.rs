//! Per-VCA encoder adaptation policies (§3.2).
//!
//! Given a media-rate target from the congestion controller, each policy
//! chooses the concrete encoding operating points. The policies are written
//! to reproduce the qualitative behaviour in Figure 2 of the paper:
//!
//! * **Teams**: one stream; adapts "mainly by increasing the quantization
//!   parameter and reducing the frame width, while keeping the FPS almost
//!   constant". Below 0.35 Mbps it exhibits the paper's surprising bug: the
//!   frame width *increases* again — which, combined with the keyframe size
//!   floor in [`crate::source`], produces the FIR storm of Fig 3b.
//! * **Meet**: simulcast of a 320×180 low stream and a 640×360 high stream.
//!   The high stream adapts QP first, then FPS; below ~0.45 Mbps the high
//!   stream is dropped entirely (the receiver-visible width falls to 320 and
//!   the SFU forwards the low stream).
//! * **Zoom**: three-layer SVC (spatial+temporal); the sender transmits the
//!   deepest stack of layers whose cumulative rate fits the target.

use vcabench_transport::rtp::Layer;

use crate::codec::{bitrate_mbps, qp_for_bitrate, EncodingParams, LADDER, QP_MAX};

/// One stream/layer the encoder will emit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamPlan {
    /// Layer tag carried in the RTP packets.
    pub layer: Layer,
    /// Operating point.
    pub params: EncodingParams,
    /// Target rate of this stream, Mbps.
    pub rate_mbps: f64,
}

/// Encoder adaptation interface: media target in, stream plans out.
pub trait EncoderPolicy {
    /// Recompute the stream plan for the given media-rate target (Mbps).
    fn plan(&mut self, target_media_mbps: f64) -> Vec<StreamPlan>;
    /// Human-readable name for diagnostics.
    fn name(&self) -> &'static str;
    /// Layout-driven constraint from the SFU (§6): the largest width any
    /// subscriber wants from this sender. Policies that support it cap or
    /// boost their streams accordingly; the default ignores it.
    fn set_max_requested_width(&mut self, _width: u32) {}
    /// Enable/disable emulation of the Teams low-rate width bug (§3.2); a
    /// no-op for policies without it. Exposed for ablation studies.
    fn set_emulate_low_rate_bug(&mut self, _enable: bool) {}
}

/// Microsoft Teams: single stream, QP-then-width adaptation, constant FPS.
#[derive(Debug, Clone)]
pub struct TeamsPolicy {
    /// Current rung in the resolution ladder.
    rung: usize,
    /// Smoothed target (gates the low-rate bug on *sustained* starvation,
    /// not on transient backoff dips).
    target_ema: f64,
    /// Emulate the paper's low-rate width bug (§3.2: the frame width
    /// "increases as uplink capacity is reduced to 0.3 Mbps", which the
    /// authors call "a poor design decision or implementation bug").
    pub emulate_low_rate_bug: bool,
    /// Constant frame rate.
    pub fps: f64,
}

impl Default for TeamsPolicy {
    fn default() -> Self {
        TeamsPolicy {
            rung: 0, // 1280x720
            target_ema: 1.0,
            emulate_low_rate_bug: true,
            fps: 30.0,
        }
    }
}

impl EncoderPolicy for TeamsPolicy {
    fn plan(&mut self, target: f64) -> Vec<StreamPlan> {
        let target = target.max(0.02);
        self.target_ema = 0.98 * self.target_ema + 0.02 * target;
        // Adjust the rung with hysteresis: QP past 42 → step down; QP under
        // 31 → step up.
        let (mut w, mut h) = LADDER[self.rung];
        let mut qp = qp_for_bitrate(w, h, self.fps, target);
        if qp > 42.0 && self.rung + 1 < LADDER.len() {
            self.rung += 1;
        } else if qp < 31.0 && self.rung > 0 {
            self.rung -= 1;
        }
        // The bug: at very low targets the width climbs back up a rung
        // instead of continuing down.
        let mut effective_rung = self.rung;
        if self.emulate_low_rate_bug && self.target_ema < 0.30 {
            // The paper's Fig 2f anomaly: at sustained ~0.3 Mbps targets the
            // client jumps back to full 720p frames.
            effective_rung = 0;
        }
        (w, h) = LADDER[effective_rung];
        qp = qp_for_bitrate(w, h, self.fps, target);
        vec![StreamPlan {
            layer: Layer::default(),
            params: EncodingParams::new(w, h, self.fps, qp),
            rate_mbps: bitrate_mbps(w, h, self.fps, qp),
        }]
    }

    fn name(&self) -> &'static str {
        "teams"
    }

    fn set_emulate_low_rate_bug(&mut self, enable: bool) {
        self.emulate_low_rate_bug = enable;
    }
}

/// Google Meet: simulcast {320×180, 640×360}.
#[derive(Debug, Clone)]
pub struct MeetPolicy {
    /// Rate of the always-on low stream at full quality.
    pub low_rate: f64,
    /// Rate of the high stream at full quality (QP 30, 30 fps).
    pub high_rate: f64,
    /// Largest width any subscriber wants (from the SFU, §6).
    pub max_requested_width: u32,
    /// Whether the high stream is currently encoded (hysteresis state).
    high_active: bool,
}

impl Default for MeetPolicy {
    fn default() -> Self {
        MeetPolicy {
            low_rate: bitrate_mbps(320, 180, 30.0, 30.0),  // 0.19
            high_rate: bitrate_mbps(640, 360, 30.0, 30.0), // 0.76
            max_requested_width: 640,
            high_active: false,
        }
    }
}

impl EncoderPolicy for MeetPolicy {
    fn plan(&mut self, target: f64) -> Vec<StreamPlan> {
        let mut target = target.max(0.02);
        // Tiny tiles everywhere → no subscriber can use the high stream, so
        // the sender stops encoding it (the n=7 uplink cliff of Fig 15b).
        // A pinned (full-window) view upgrades the high stream to 960×540
        // (the ~1 Mbps pinned uplink of Fig 15c).
        let (high_w, high_h) = if self.max_requested_width >= 1000 {
            (960, 540)
        } else {
            (640, 360)
        };
        let high_full = if self.max_requested_width >= 1000 {
            bitrate_mbps(960, 540, 30.0, 34.8) // ≈0.81: pinned total ≈1.0
        } else {
            self.high_rate
        };
        if self.max_requested_width < 350 {
            target = target.min(0.25);
        }
        let mut plans = Vec::new();
        // Low stream: always present; degrades only under extreme targets.
        let (low_fps, low_qp) = if target >= 0.15 {
            (30.0, 30.0)
        } else {
            (15.0, qp_for_bitrate(320, 180, 15.0, target))
        };
        let low = StreamPlan {
            layer: Layer {
                spatial: 0,
                temporal: 0,
            },
            params: EncodingParams::new(320, 180, low_fps, low_qp),
            rate_mbps: bitrate_mbps(320, 180, low_fps, low_qp).min(target.max(0.05)),
        };
        let low_cost = low.rate_mbps;
        plans.push(low);
        // High stream: QP first, FPS second, dropped below ~0.42 total with
        // hysteresis (re-added at 0.50) so the stream does not flap — every
        // restart costs a keyframe burst.
        let budget = target - low_cost;
        // Thresholds chosen so a GCC decrease at 0.5 Mbps shaping
        // (β·receive ≈ 0.40) keeps the high stream alive, while at 0.4 Mbps
        // shaping it falls below 0.36 and the stream is dropped — matching
        // Fig 2f's frame-width cliff at 0.4 Mbps.
        let threshold = if self.high_active { 0.36 } else { 0.42 };
        self.high_active = target >= threshold && budget > 0.1;
        if self.high_active {
            if budget >= high_full {
                plans.push(StreamPlan {
                    layer: Layer {
                        spatial: 1,
                        temporal: 0,
                    },
                    params: EncodingParams::new(
                        high_w,
                        high_h,
                        30.0,
                        qp_for_bitrate(high_w, high_h, 30.0, high_full),
                    ),
                    rate_mbps: high_full,
                });
            } else if budget >= 0.45 * high_full {
                // QP adaptation region (the 0.7–1.0 Mbps sweep).
                let qp = qp_for_bitrate(high_w, high_h, 30.0, budget);
                plans.push(StreamPlan {
                    layer: Layer {
                        spatial: 1,
                        temporal: 0,
                    },
                    params: EncodingParams::new(high_w, high_h, 30.0, qp),
                    rate_mbps: budget,
                });
            } else {
                // FPS adaptation region before the stream is dropped.
                let fps = (30.0 * budget / (0.45 * high_full)).clamp(7.5, 30.0);
                let qp = qp_for_bitrate(high_w, high_h, fps, budget);
                plans.push(StreamPlan {
                    layer: Layer {
                        spatial: 1,
                        temporal: 0,
                    },
                    params: EncodingParams::new(high_w, high_h, fps, qp),
                    rate_mbps: budget,
                });
            }
        }
        plans
    }

    fn name(&self) -> &'static str {
        "meet"
    }

    fn set_max_requested_width(&mut self, width: u32) {
        self.max_requested_width = width;
    }
}

/// Zoom: three-layer SVC. Layers are cumulative: receivers subscribing to
/// more layers see higher fidelity.
#[derive(Debug, Clone)]
pub struct ZoomPolicy {
    /// Cumulative rates of the layer stacks, Mbps.
    pub cumulative: [f64; 3],
    /// Layers the layout demand allows (from requested width, §6).
    pub max_layers: usize,
    /// True when some subscriber pinned this sender (boosts the top layer).
    pub pinned: bool,
}

impl Default for ZoomPolicy {
    fn default() -> Self {
        ZoomPolicy {
            // L0: 320x180@15; L0+L1: 640x360@15; L0+L1+L2: 640x360@30 (≈0.68,
            // Zoom's encoder ceiling for the 720p talking-head source).
            cumulative: [0.10, 0.40, 0.68],
            max_layers: 3,
            pinned: false,
        }
    }
}

impl ZoomPolicy {
    /// Number of layers that fit within `target` (at least 1), bounded by
    /// the layout demand.
    pub fn layers_for(&self, target: f64) -> usize {
        let mut n = 1;
        for (i, &c) in self.cumulative.iter().enumerate().skip(1) {
            // 10% under-margin: FEC padding absorbs small overshoots, and a
            // too-strict margin would strand the rate at the previous stack
            // (the client pads the difference with up to 2x redundancy).
            if target >= c * 0.90 {
                n = i + 1;
            }
        }
        n.min(self.max_layers.max(1))
    }

    /// Top-layer cumulative rate under the current pinned/boost state.
    pub fn top_rate(&self) -> f64 {
        if self.pinned {
            1.0 // pinned Zoom senders push ~1 Mbps regardless of call size
        } else {
            self.cumulative[2]
        }
    }

    /// The operating point seen by a receiver subscribed to `layers`.
    pub fn params_for_layers(&self, layers: usize) -> EncodingParams {
        match layers {
            1 => EncodingParams::new(
                320,
                180,
                15.0,
                qp_for_bitrate(320, 180, 15.0, self.cumulative[0]),
            ),
            2 => EncodingParams::new(
                640,
                360,
                15.0,
                qp_for_bitrate(640, 360, 15.0, self.cumulative[1]),
            ),
            _ => EncodingParams::new(
                640,
                360,
                30.0,
                qp_for_bitrate(640, 360, 30.0, self.cumulative[2]),
            ),
        }
    }
}

impl EncoderPolicy for ZoomPolicy {
    fn plan(&mut self, target: f64) -> Vec<StreamPlan> {
        let target = target.max(0.02);
        let n = self.layers_for(target);
        let mut plans = Vec::new();
        let mut prev = 0.0;
        for i in 0..n {
            let cum = self.cumulative[i].min(target.max(self.cumulative[0]));
            let delta = (cum - prev).max(0.02);
            let p = self.params_for_layers(i + 1);
            plans.push(StreamPlan {
                layer: Layer {
                    spatial: i as u8,
                    temporal: i as u8,
                },
                params: p,
                rate_mbps: delta,
            });
            prev = cum;
        }
        // Sub-L0 targets squeeze the base layer's QP.
        if n == 1 && target < self.cumulative[0] {
            let qp = qp_for_bitrate(320, 180, 15.0, target).min(QP_MAX);
            plans[0].params.qp = qp;
            plans[0].rate_mbps = target;
        }
        plans
    }

    fn name(&self) -> &'static str {
        "zoom"
    }

    fn set_max_requested_width(&mut self, width: u32) {
        self.pinned = width >= 1000;
        self.max_layers = if width >= 600 {
            3
        } else if width >= 350 {
            2
        } else {
            1
        };
        self.cumulative[2] = if self.pinned { 1.0 } else { 0.68 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teams_constant_fps_qp_then_width() {
        let mut p = TeamsPolicy {
            emulate_low_rate_bug: false,
            ..TeamsPolicy::default()
        };
        // Walk the target down, letting the rung hysteresis settle at each
        // level; fps must never change, width must never increase.
        let mut last_width = u32::MAX;
        for t in [1.8, 1.2, 0.9, 0.6, 0.45] {
            let plan = {
                p.plan(t);
                p.plan(t)[0]
            };
            assert_eq!(plan.params.fps, 30.0, "FPS held constant");
            assert!(
                plan.params.width <= last_width,
                "width monotone non-increasing: {} then {}",
                last_width,
                plan.params.width
            );
            last_width = plan.params.width;
        }
        assert!(last_width < 1280, "width must eventually step down");
    }

    #[test]
    fn teams_bug_raises_width_at_low_rate() {
        let mut p = TeamsPolicy::default();
        // Walk the target down so the rung and the EMA adapt naturally.
        for t in [1.5, 1.0, 0.7, 0.5] {
            for _ in 0..30 {
                p.plan(t);
            }
        }
        for _ in 0..200 {
            p.plan(0.4);
        }
        let at_04 = p.plan(0.4)[0].params.width;
        for _ in 0..200 {
            p.plan(0.28);
        }
        let at_03 = p.plan(0.28)[0].params.width;
        assert!(
            at_03 > at_04,
            "bug emulation: width at 0.3 ({at_03}) must exceed width at 0.4 ({at_04})"
        );
        // With the bug disabled the width is monotone.
        let mut q = TeamsPolicy {
            emulate_low_rate_bug: false,
            ..TeamsPolicy::default()
        };
        for t in [1.5, 1.0, 0.7, 0.5] {
            for _ in 0..30 {
                q.plan(t);
            }
        }
        for _ in 0..200 {
            q.plan(0.4);
        }
        let qa = q.plan(0.4)[0].params.width;
        for _ in 0..200 {
            q.plan(0.28);
        }
        let qb = q.plan(0.28)[0].params.width;
        assert!(qb <= qa);
    }

    #[test]
    fn meet_two_streams_at_nominal() {
        let mut p = MeetPolicy::default();
        let plans = p.plan(0.95);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].params.width, 320);
        assert_eq!(plans[1].params.width, 640);
        let total: f64 = plans.iter().map(|s| s.rate_mbps).sum();
        assert!((total - 0.95).abs() < 0.05, "total {total}");
    }

    #[test]
    fn meet_raises_qp_in_mid_band() {
        let mut p = MeetPolicy::default();
        let at_09 = p.plan(0.9);
        let at_06 = p.plan(0.6);
        assert_eq!(at_06.len(), 2);
        assert!(
            at_06[1].params.qp > at_09[1].params.qp,
            "QP adapts first: {} vs {}",
            at_06[1].params.qp,
            at_09[1].params.qp
        );
        assert_eq!(at_06[1].params.fps, 30.0, "FPS held in QP region");
    }

    #[test]
    fn meet_drops_high_stream_below_045() {
        let mut p = MeetPolicy::default();
        let plans = p.plan(0.35);
        assert_eq!(plans.len(), 1, "high stream dropped");
        assert_eq!(plans[0].params.width, 320);
        assert_eq!(plans[0].params.fps, 30.0, "low stream keeps its frame rate");
    }

    #[test]
    fn meet_degrades_low_stream_only_at_extremes() {
        let mut p = MeetPolicy::default();
        let plans = p.plan(0.1);
        assert_eq!(plans.len(), 1);
        assert!(plans[0].params.fps < 30.0);
    }

    #[test]
    fn zoom_layers_monotone_in_target() {
        let p = ZoomPolicy::default();
        assert_eq!(p.layers_for(0.05), 1);
        assert_eq!(p.layers_for(0.2), 1);
        assert_eq!(p.layers_for(0.45), 2);
        assert_eq!(p.layers_for(0.7), 3);
        assert_eq!(p.layers_for(2.0), 3);
    }

    #[test]
    fn zoom_plan_rates_sum_to_stack() {
        let mut p = ZoomPolicy::default();
        let plans = p.plan(0.68);
        assert_eq!(plans.len(), 3);
        let total: f64 = plans.iter().map(|s| s.rate_mbps).sum();
        assert!((total - 0.68).abs() < 0.02, "total {total}");
        // Layer tags are distinct.
        assert_ne!(plans[0].layer, plans[1].layer);
    }

    #[test]
    fn zoom_single_layer_squeezes_qp() {
        let mut p = ZoomPolicy::default();
        let plans = p.plan(0.06);
        assert_eq!(plans.len(), 1);
        assert!(plans[0].params.qp > 30.0);
        assert!(plans[0].rate_mbps <= 0.07);
    }
}
