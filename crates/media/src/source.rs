//! The talking-head video source.
//!
//! The paper feeds every client a pre-recorded 1280×720 talking-head video
//! via ffmpeg, "to both replicate a real video call and ensure consistency
//! across experiments" (a static webcam scene would compress to almost
//! nothing). We model the *statistics* of that source: a frame-size process
//! with a seeded noise term, periodic keyframes several times larger than
//! delta frames, and — critically for the Teams FIR result (Fig 3b) — a
//! **keyframe size floor proportional to resolution**: an intra frame cannot
//! compress below a minimum number of bits per pixel, no matter the QP, so a
//! high-resolution stream at a starved bitrate emits keyframes that take
//! hundreds of milliseconds to drain through the link.

use vcabench_simcore::SimRng;

/// Minimum compressed keyframe size, bytes per pixel (VP8/H.264 intra floors
/// for natural content at conferencing quality sit around 0.02–0.05 B/px).
pub const KEYFRAME_FLOOR_BYTES_PER_PIXEL: f64 = 0.025;
/// Keyframe size multiplier relative to the mean frame size.
pub const KEYFRAME_GAIN: f64 = 4.0;
/// Default keyframe interval, frames. Real-time encoders run a near-infinite
/// GOP (intra frames only on request/refresh); 1200 frames ≈ 40 s of periodic
/// refresh keeps decoder resync possible without hammering the delay-based
/// congestion controllers with bursts every few seconds.
pub const KEYFRAME_INTERVAL: u64 = 1200;

/// Seeded talking-head frame-size generator for one encoded stream.
#[derive(Debug, Clone)]
pub struct TalkingHeadSource {
    rng: SimRng,
    frames_emitted: u64,
    keyframe_interval: u64,
    /// Pending forced keyframe (FIR response).
    force_keyframe: bool,
    /// Multiplicative scene-activity modulation (slow random walk around 1).
    activity: f64,
}

/// One frame produced by the source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceFrame {
    /// Compressed size, bytes.
    pub bytes: usize,
    /// Whether this is an intra (key) frame.
    pub keyframe: bool,
}

impl TalkingHeadSource {
    /// New source with its own RNG stream.
    pub fn new(rng: SimRng) -> Self {
        TalkingHeadSource {
            rng,
            frames_emitted: 0,
            keyframe_interval: KEYFRAME_INTERVAL,
            force_keyframe: true, // first frame is always intra
            activity: 1.0,
        }
    }

    /// Request an intra frame at the next opportunity (FIR handling).
    pub fn request_keyframe(&mut self) {
        self.force_keyframe = true;
    }

    /// Produce the next frame for a stream currently targeting
    /// `rate_mbps` at `fps` with `width`×`height` resolution.
    pub fn next_frame(&mut self, rate_mbps: f64, fps: f64, width: u32, height: u32) -> SourceFrame {
        let fps = fps.max(1.0);
        let mean_bytes = (rate_mbps * 1e6 / 8.0 / fps).max(1.0);
        // Slow scene-activity random walk: keeps per-frame sizes correlated
        // the way head motion does. The band is tight (±10 %) because the
        // paper deliberately used a pre-recorded talking-head video for
        // consistency; wider swings would dominate rate metrics like TTR.
        self.activity = (self.activity + self.rng.normal_with(0.0, 0.01)).clamp(0.9, 1.1);
        let keyframe = self.force_keyframe
            || (self.frames_emitted > 0
                && self.frames_emitted.is_multiple_of(self.keyframe_interval));
        self.force_keyframe = false;
        self.frames_emitted += 1;

        let noise = (1.0 + self.rng.normal_with(0.0, 0.15)).clamp(0.4, 1.8);
        let bytes = if keyframe {
            let floor = width as f64 * height as f64 * KEYFRAME_FLOOR_BYTES_PER_PIXEL;
            (mean_bytes * KEYFRAME_GAIN * noise).max(floor)
        } else {
            // Delta frames shrink slightly to compensate the keyframe bulge,
            // keeping the stream near its target rate.
            let kf_share = KEYFRAME_GAIN / self.keyframe_interval as f64;
            mean_bytes * (1.0 - kf_share) * self.activity * noise
        };
        SourceFrame {
            bytes: bytes.round().max(1.0) as usize,
            keyframe,
        }
    }

    /// Frames produced so far.
    pub fn frames_emitted(&self) -> u64 {
        self.frames_emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(seed: u64) -> TalkingHeadSource {
        TalkingHeadSource::new(SimRng::seed_from_u64(seed))
    }

    #[test]
    fn long_run_rate_matches_target() {
        let mut s = source(1);
        let fps = 30.0;
        let target = 0.76; // Mbps
        let n = 3000;
        let total: usize = (0..n)
            .map(|_| s.next_frame(target, fps, 640, 360).bytes)
            .sum();
        let rate = total as f64 * 8.0 * fps / n as f64 / 1e6;
        assert!(
            (rate - target).abs() / target < 0.15,
            "long-run rate {rate} vs target {target}"
        );
    }

    #[test]
    fn first_frame_is_keyframe() {
        let mut s = source(2);
        assert!(s.next_frame(0.5, 30.0, 640, 360).keyframe);
        assert!(!s.next_frame(0.5, 30.0, 640, 360).keyframe);
    }

    #[test]
    fn periodic_keyframes() {
        let mut s = source(3);
        let mut key_idx = Vec::new();
        for i in 0..=2 * KEYFRAME_INTERVAL {
            if s.next_frame(0.5, 30.0, 640, 360).keyframe {
                key_idx.push(i);
            }
        }
        assert!(key_idx.contains(&0));
        assert!(key_idx.contains(&KEYFRAME_INTERVAL));
        assert!(key_idx.contains(&(2 * KEYFRAME_INTERVAL)));
        assert_eq!(key_idx.len(), 3);
    }

    #[test]
    fn fir_forces_keyframe() {
        let mut s = source(4);
        s.next_frame(0.5, 30.0, 640, 360);
        s.next_frame(0.5, 30.0, 640, 360);
        s.request_keyframe();
        assert!(s.next_frame(0.5, 30.0, 640, 360).keyframe);
    }

    #[test]
    fn keyframe_floor_scales_with_resolution() {
        // At a starved rate, a 640x360 keyframe must be at least
        // pixels * floor bytes, far larger than the rate-derived size.
        let mut s = source(5);
        let kf = s.next_frame(0.1, 30.0, 640, 360);
        assert!(kf.keyframe);
        let floor = (640.0 * 360.0 * KEYFRAME_FLOOR_BYTES_PER_PIXEL) as usize;
        assert!(kf.bytes >= floor, "kf {} < floor {floor}", kf.bytes);
        // The same starved rate at 160x90 produces a much smaller keyframe
        // (the floor no longer binds; the rate-derived size does).
        let mut s2 = source(5);
        let kf2 = s2.next_frame(0.1, 30.0, 160, 90);
        assert!(kf2.bytes < kf.bytes / 2, "{} vs {}", kf2.bytes, kf.bytes);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = source(9);
        let mut b = source(9);
        for _ in 0..100 {
            assert_eq!(
                a.next_frame(0.5, 30.0, 640, 360),
                b.next_frame(0.5, 30.0, 640, 360)
            );
        }
    }
}
