//! Video codec rate model: bitrate as a function of encoding parameters.
//!
//! The paper reads three knobs out of the WebRTC stats API (§3.2): frame
//! width, frames per second, and the quantization parameter. VCAs "adapt the
//! video quality by adjusting the encoding parameters to achieve a target
//! bitrate estimate provided by the transport". We model the forward map
//! (parameters → bitrate) with the standard codec power law and calibrate it
//! against the one absolute anchor the paper provides: Meet's low simulcast
//! stream, 320×180 at ~30 fps, measured at **0.19 Mbps** (§3.1).
//!
//! `bitrate = 0.19 Mbps · (w·h / 320·180) · (fps/30)^0.9 · 2^((30−qp)/6)`
//!
//! The 2^(−qp/6) factor is the familiar "+6 QP halves the rate" rule of
//! H.264/VP8-family encoders; the sub-linear fps exponent reflects smaller
//! inter-frame deltas at higher frame rates.

/// Reference bitrate of the calibration point (320×180 @ 30 fps, QP 30).
pub const BASE_MBPS: f64 = 0.19;
/// Calibration resolution.
pub const BASE_PIXELS: f64 = 320.0 * 180.0;
/// Calibration frame rate.
pub const BASE_FPS: f64 = 30.0;
/// Calibration QP.
pub const BASE_QP: f64 = 30.0;
/// Valid QP range (H.264-style).
pub const QP_MIN: f64 = 10.0;
/// Upper end of the usable QP range.
pub const QP_MAX: f64 = 50.0;

/// A concrete encoding operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodingParams {
    /// Frame width, pixels.
    pub width: u32,
    /// Frame height, pixels.
    pub height: u32,
    /// Frames per second.
    pub fps: f64,
    /// Quantization parameter.
    pub qp: f64,
}

impl EncodingParams {
    /// Convenience constructor.
    pub fn new(width: u32, height: u32, fps: f64, qp: f64) -> Self {
        EncodingParams {
            width,
            height,
            fps,
            qp,
        }
    }

    /// Bitrate this operating point produces, Mbps.
    pub fn bitrate_mbps(&self) -> f64 {
        bitrate_mbps(self.width, self.height, self.fps, self.qp)
    }
}

/// Forward rate model.
///
/// ```
/// use vcabench_media::codec::{bitrate_mbps, qp_for_bitrate};
///
/// // The calibration anchor: Meet's low simulcast copy.
/// assert!((bitrate_mbps(320, 180, 30.0, 30.0) - 0.19).abs() < 1e-12);
/// // The inverse hits any in-range target.
/// let qp = qp_for_bitrate(640, 360, 30.0, 0.5);
/// assert!((bitrate_mbps(640, 360, 30.0, qp) - 0.5).abs() < 1e-9);
/// ```
pub fn bitrate_mbps(width: u32, height: u32, fps: f64, qp: f64) -> f64 {
    let pixels = width as f64 * height as f64;
    BASE_MBPS
        * (pixels / BASE_PIXELS)
        * (fps / BASE_FPS).powf(0.9)
        * 2f64.powf((BASE_QP - qp) / 6.0)
}

/// Inverse model: the QP that hits `target_mbps` at the given resolution and
/// frame rate, clamped to the valid range.
pub fn qp_for_bitrate(width: u32, height: u32, fps: f64, target_mbps: f64) -> f64 {
    assert!(target_mbps > 0.0, "target must be positive");
    let at_base_qp = bitrate_mbps(width, height, fps, BASE_QP);
    let qp = BASE_QP - 6.0 * (target_mbps / at_base_qp).log2();
    qp.clamp(QP_MIN, QP_MAX)
}

/// Standard resolution ladder used by the adaptation policies, highest first.
pub const LADDER: &[(u32, u32)] = &[
    (1280, 720),
    (960, 540),
    (640, 360),
    (480, 270),
    (320, 180),
    (160, 90),
];

/// Index of a resolution in [`LADDER`] (exact match), or the nearest rung.
pub fn ladder_index(width: u32) -> usize {
    LADDER
        .iter()
        .position(|&(w, _)| w <= width)
        .unwrap_or(LADDER.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_point_matches_paper() {
        // Meet's low simulcast stream: 320x180 @30 ≈ 0.19 Mbps (§3.1).
        let r = bitrate_mbps(320, 180, 30.0, BASE_QP);
        assert!((r - 0.19).abs() < 1e-12);
    }

    #[test]
    fn high_simulcast_stream_rate() {
        // 640x360 is 4x the pixels: ~0.76 Mbps at the same QP — together with
        // the low stream this reproduces Meet's ~0.95 Mbps upstream (Table 2).
        let r = bitrate_mbps(640, 360, 30.0, BASE_QP);
        assert!((r - 0.76).abs() < 1e-9);
    }

    #[test]
    fn qp_halves_rate_every_six_steps() {
        let r30 = bitrate_mbps(640, 360, 30.0, 30.0);
        let r36 = bitrate_mbps(640, 360, 30.0, 36.0);
        let r24 = bitrate_mbps(640, 360, 30.0, 24.0);
        assert!((r30 / r36 - 2.0).abs() < 1e-9);
        assert!((r24 / r30 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fps_scaling_sublinear() {
        let r30 = bitrate_mbps(640, 360, 30.0, 30.0);
        let r15 = bitrate_mbps(640, 360, 15.0, 30.0);
        assert!(r15 > r30 / 2.0, "halving fps saves less than half the bits");
        assert!(r15 < r30 * 0.65);
    }

    #[test]
    fn inverse_round_trips() {
        for &(w, h) in LADDER {
            for target in [0.1, 0.3, 0.8, 1.5] {
                let qp = qp_for_bitrate(w, h, 30.0, target);
                if (QP_MIN + 0.01..QP_MAX - 0.01).contains(&qp) {
                    let back = bitrate_mbps(w, h, 30.0, qp);
                    assert!(
                        (back - target).abs() / target < 1e-9,
                        "{w}x{h} target {target}: qp {qp} -> {back}"
                    );
                }
            }
        }
    }

    #[test]
    fn inverse_clamps_out_of_range() {
        // Absurdly high target at tiny resolution → QP pinned at minimum.
        assert_eq!(qp_for_bitrate(160, 90, 30.0, 100.0), QP_MIN);
        // Tiny target at high resolution → QP pinned at maximum.
        assert_eq!(qp_for_bitrate(1280, 720, 30.0, 0.01), QP_MAX);
    }

    #[test]
    fn ladder_index_finds_rung() {
        assert_eq!(ladder_index(1280), 0);
        assert_eq!(ladder_index(640), 2);
        assert_eq!(ladder_index(100), LADDER.len() - 1);
        assert_eq!(ladder_index(700), 2, "nearest rung at or below");
    }
}
