//! Receive-side video pipeline: frame reassembly, freeze detection, FIR.
//!
//! Implements the paper's §3.2 receiver metrics exactly:
//!
//! * a **freeze** occurs "if the frame inter-arrival > max(3δ, δ + 150 ms),
//!   where δ is the average frame duration";
//! * the **freeze ratio** normalizes total freeze duration by call duration;
//! * a **FIR** (Full Intra Request) is issued when the receiver cannot decode
//!   — here, when frames keep failing reassembly and the decoder needs a new
//!   intra frame to resynchronize (the Fig 3b upstream metric).

use std::collections::BTreeMap;

use vcabench_simcore::{SimDuration, SimTime};
use vcabench_transport::rtp::RtpPacket;

/// The paper's fixed freeze offset (150 ms).
pub const FREEZE_OFFSET: SimDuration = SimDuration::from_millis(150);

/// Outcome of feeding a packet to the assembler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AssembleEvent {
    /// Frame still incomplete.
    Pending,
    /// A frame completed reassembly (decodable).
    FrameComplete {
        /// Frame id.
        frame_id: u64,
        /// Total frame bytes.
        bytes: usize,
        /// Whether it was a keyframe.
        keyframe: bool,
    },
}

#[derive(Debug, Clone, Default)]
struct PartialFrame {
    received: u16,
    expected: u16,
    bytes: usize,
    keyframe: bool,
    first_seen: SimTime,
}

/// Reassembles RTP packets into frames and tracks decodability.
///
/// The decoder model: delta frames decode only if the decoder is in sync
/// (no reference frame was skipped); a completed keyframe always restores
/// sync. Losing any packet of a frame makes that frame undecodable.
#[derive(Debug, Clone)]
pub struct FrameAssembler {
    partial: BTreeMap<u64, PartialFrame>,
    /// Highest frame id fully decoded.
    last_decoded: Option<u64>,
    /// Decoder lost its reference chain and needs a keyframe.
    pub needs_keyframe: bool,
    /// Frames that completed reassembly and were decodable.
    pub frames_decoded: u64,
    /// Frames abandoned (packet loss or stale).
    pub frames_dropped: u64,
    stale_after: SimDuration,
    /// Gaps of odd frame ids do not break the reference chain.
    thinning_aware: bool,
}

impl FrameAssembler {
    /// New assembler.
    pub fn new() -> Self {
        FrameAssembler {
            partial: BTreeMap::new(),
            last_decoded: None,
            needs_keyframe: false,
            frames_decoded: 0,
            frames_dropped: 0,
            stale_after: SimDuration::from_millis(2000),
            thinning_aware: false,
        }
    }

    /// Tolerate gaps of odd frame ids (the convention for droppable temporal
    /// enhancement frames): used by Teams receivers whose relay thins the
    /// stream by dropping enhancement frames in large calls (§6.1).
    pub fn with_temporal_thinning(mut self) -> Self {
        self.thinning_aware = true;
        self
    }

    /// Feed one media packet. Returns whether a frame became decodable.
    pub fn on_packet(&mut self, now: SimTime, pkt: &RtpPacket, bytes: usize) -> AssembleEvent {
        let entry = self
            .partial
            .entry(pkt.frame_id)
            .or_insert_with(|| PartialFrame {
                expected: pkt.frame_pkts.max(1),
                first_seen: now,
                ..PartialFrame::default()
            });
        entry.received += 1;
        entry.bytes += bytes;
        entry.keyframe |= pkt.meta.map(|m| m.keyframe).unwrap_or(false);
        let complete = entry.received >= entry.expected;

        // Expire stale partial frames (their packets were lost).
        self.expire_stale(now, pkt.frame_id);

        if !complete {
            return AssembleEvent::Pending;
        }
        let frame = self.partial.remove(&pkt.frame_id).expect("entry exists");
        let decodable = if frame.keyframe {
            self.needs_keyframe = false;
            true
        } else {
            !self.needs_keyframe
        };
        // Any skipped frame id breaks the reference chain for later deltas —
        // unless thinning-aware and every skipped id is an odd (droppable
        // temporal-enhancement) frame.
        if let Some(last) = self.last_decoded {
            let gap_breaks = if self.thinning_aware {
                (last + 1..pkt.frame_id).any(|id| id % 2 == 0)
            } else {
                pkt.frame_id > last + 1
            };
            if gap_breaks && !frame.keyframe {
                // A reference was missed; this delta cannot decode.
                self.needs_keyframe = true;
                self.frames_dropped += 1;
                self.last_decoded = Some(pkt.frame_id);
                return AssembleEvent::Pending;
            }
        }
        self.last_decoded = Some(pkt.frame_id);
        if decodable {
            self.frames_decoded += 1;
            AssembleEvent::FrameComplete {
                frame_id: pkt.frame_id,
                bytes: frame.bytes,
                keyframe: frame.keyframe,
            }
        } else {
            self.frames_dropped += 1;
            AssembleEvent::Pending
        }
    }

    fn expire_stale(&mut self, now: SimTime, current: u64) {
        let stale: Vec<u64> = self
            .partial
            .iter()
            .filter(|(&id, f)| {
                id != current && now.saturating_since(f.first_seen) > self.stale_after
            })
            .map(|(&id, _)| id)
            .collect();
        for id in stale {
            self.partial.remove(&id);
            self.frames_dropped += 1;
            self.needs_keyframe = true;
        }
    }

    /// Partial frames currently buffered.
    pub fn pending_frames(&self) -> usize {
        self.partial.len()
    }
}

impl Default for FrameAssembler {
    fn default() -> Self {
        Self::new()
    }
}

/// Implements the paper's freeze rule over decoded-frame render times.
#[derive(Debug, Clone)]
pub struct FreezeDetector {
    last_frame: Option<SimTime>,
    /// EMA of inter-frame duration (δ), seconds.
    avg_frame_dur_s: f64,
    /// Total frozen time.
    pub freeze_time: SimDuration,
    /// Number of distinct freezes.
    pub freeze_count: u64,
    /// Total frames observed.
    pub frames: u64,
}

impl FreezeDetector {
    /// Detector assuming a starting frame rate of `initial_fps`.
    pub fn new(initial_fps: f64) -> Self {
        FreezeDetector {
            last_frame: None,
            avg_frame_dur_s: 1.0 / initial_fps.max(1.0),
            freeze_time: SimDuration::ZERO,
            freeze_count: 0,
            frames: 0,
        }
    }

    /// Record a rendered frame at `now`.
    pub fn on_frame(&mut self, now: SimTime) {
        self.frames += 1;
        if let Some(last) = self.last_frame {
            let gap_s = now.saturating_since(last).as_secs_f64();
            let delta = self.avg_frame_dur_s;
            let threshold = (3.0 * delta).max(delta + FREEZE_OFFSET.as_secs_f64());
            if gap_s > threshold {
                self.freeze_count += 1;
                self.freeze_time += SimDuration::from_secs_f64(gap_s - delta);
            }
            // EMA update, ignoring freeze gaps so δ tracks the nominal rate.
            if gap_s <= threshold {
                self.avg_frame_dur_s = 0.95 * self.avg_frame_dur_s + 0.05 * gap_s;
            }
        }
        self.last_frame = Some(now);
    }

    /// Freeze ratio over a call of `duration`.
    pub fn freeze_ratio(&self, duration: SimDuration) -> f64 {
        if duration.is_zero() {
            return 0.0;
        }
        (self.freeze_time.as_secs_f64() / duration.as_secs_f64()).clamp(0.0, 1.0)
    }

    /// Current δ estimate in milliseconds.
    pub fn avg_frame_duration_ms(&self) -> f64 {
        self.avg_frame_dur_s * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcabench_transport::rtp::{FrameMeta, Layer, StreamKind};

    fn pkt(frame_id: u64, idx: u16, of: u16, keyframe: bool) -> RtpPacket {
        RtpPacket {
            ssrc: 1,
            seq: frame_id * 100 + idx as u64,
            kind: StreamKind::Video,
            layer: Layer::default(),
            frame_id,
            marker: idx + 1 == of,
            frame_pkts: of,
            is_fec: false,
            is_retransmit: false,
            capture_ts: SimTime::ZERO,
            meta: Some(FrameMeta {
                width: 640,
                height: 360,
                fps: 30.0,
                qp: 30.0,
                keyframe,
            }),
        }
    }

    #[test]
    fn complete_frame_decodes() {
        let mut a = FrameAssembler::new();
        let t = SimTime::from_millis(10);
        assert_eq!(
            a.on_packet(t, &pkt(0, 0, 2, true), 500),
            AssembleEvent::Pending
        );
        match a.on_packet(t, &pkt(0, 1, 2, true), 500) {
            AssembleEvent::FrameComplete {
                bytes, keyframe, ..
            } => {
                assert_eq!(bytes, 1000);
                assert!(keyframe);
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(a.frames_decoded, 1);
    }

    #[test]
    fn missing_reference_blocks_deltas_until_keyframe() {
        let mut a = FrameAssembler::new();
        let t = SimTime::from_millis(1);
        // Keyframe 0 decodes.
        a.on_packet(t, &pkt(0, 0, 1, true), 500);
        // Frame 1 lost entirely; frame 2 (delta) completes but cannot decode.
        let ev = a.on_packet(t, &pkt(2, 0, 1, false), 500);
        assert_eq!(ev, AssembleEvent::Pending);
        assert!(a.needs_keyframe);
        // Delta 3 also refused.
        assert_eq!(
            a.on_packet(t, &pkt(3, 0, 1, false), 500),
            AssembleEvent::Pending
        );
        // Keyframe 4 restores sync.
        assert!(matches!(
            a.on_packet(t, &pkt(4, 0, 1, true), 500),
            AssembleEvent::FrameComplete { .. }
        ));
        assert!(!a.needs_keyframe);
    }

    #[test]
    fn stale_partial_frames_expire() {
        let mut a = FrameAssembler::new();
        a.on_packet(SimTime::ZERO, &pkt(0, 0, 2, false), 500); // half a frame
                                                               // Three seconds later another frame's packet triggers expiry.
        a.on_packet(SimTime::from_secs(3), &pkt(10, 0, 2, false), 500);
        assert_eq!(a.frames_dropped, 1);
        assert!(a.needs_keyframe);
        assert_eq!(a.pending_frames(), 1); // only frame 10 remains
    }

    #[test]
    fn freeze_rule_matches_paper_formula() {
        let mut d = FreezeDetector::new(30.0);
        // 30 fps cadence: δ = 33.3 ms; threshold = max(100 ms, 183 ms) = 183 ms.
        let mut t = SimTime::ZERO;
        for _ in 0..30 {
            d.on_frame(t);
            t += SimDuration::from_micros(33_333);
        }
        assert_eq!(d.freeze_count, 0);
        // A 150 ms gap is below threshold: no freeze.
        t += SimDuration::from_millis(150);
        d.on_frame(t);
        assert_eq!(d.freeze_count, 0);
        // A 400 ms gap exceeds it: freeze.
        t += SimDuration::from_millis(400);
        d.on_frame(t);
        assert_eq!(d.freeze_count, 1);
        assert!(d.freeze_time >= SimDuration::from_millis(300));
    }

    #[test]
    fn freeze_threshold_scales_with_low_fps() {
        // At 5 fps (δ=200 ms) the 3δ term dominates: 550 ms gap is fine.
        let mut d = FreezeDetector::new(5.0);
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            d.on_frame(t);
            t += SimDuration::from_millis(200);
        }
        // After the loop `t` is one cadence past the last frame, so adding
        // 350 ms produces an actual inter-frame gap of 550 ms < 3δ = 600 ms.
        t += SimDuration::from_millis(350);
        d.on_frame(t);
        assert_eq!(d.freeze_count, 0, "below 3δ at low fps");
        t += SimDuration::from_millis(700);
        d.on_frame(t);
        assert_eq!(d.freeze_count, 1);
    }

    #[test]
    fn freeze_ratio_normalizes() {
        let mut d = FreezeDetector::new(30.0);
        d.on_frame(SimTime::ZERO);
        d.on_frame(SimTime::from_secs(1)); // 1 s freeze
        let ratio = d.freeze_ratio(SimDuration::from_secs(10));
        assert!(ratio > 0.08 && ratio < 0.11, "ratio {ratio}");
    }

    #[test]
    fn gap_exactly_at_threshold_is_not_a_freeze() {
        // The rule is strict: gap > max(3δ, δ + 150 ms). At 4 fps both δ
        // (250 ms) and the 3δ threshold (750 ms) are exactly representable
        // in f64, so a 750 ms gap sits precisely on the boundary.
        let mut d = FreezeDetector::new(4.0);
        d.on_frame(SimTime::ZERO);
        d.on_frame(SimTime::from_micros(750_000));
        assert_eq!(d.freeze_count, 0, "boundary gap must not count");
        assert_eq!(d.freeze_time, SimDuration::ZERO);
        // The boundary gap feeds the EMA like any non-freeze gap:
        // δ ← 0.95·0.25 + 0.05·0.75 = 0.275 s.
        assert!((d.avg_frame_duration_ms() - 275.0).abs() < 1e-9);
        // One microsecond past the boundary is a freeze.
        let mut d = FreezeDetector::new(4.0);
        d.on_frame(SimTime::ZERO);
        d.on_frame(SimTime::from_micros(750_001));
        assert_eq!(d.freeze_count, 1);
        // Frozen time is the gap beyond one nominal frame duration, and a
        // freeze gap must NOT feed the EMA (δ keeps the nominal rate).
        assert!((d.freeze_time.as_secs_f64() - 0.500_001).abs() < 1e-5);
        assert!((d.avg_frame_duration_ms() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn first_frame_only_establishes_the_timeline() {
        // No gap exists before the first frame: a detector created at t=0
        // whose first frame lands late must not count a startup freeze —
        // the paper's rule is over inter-frame gaps of rendered frames.
        let mut d = FreezeDetector::new(30.0);
        d.on_frame(SimTime::from_secs(5));
        assert_eq!(d.frames, 1);
        assert_eq!(d.freeze_count, 0);
        assert_eq!(d.freeze_time, SimDuration::ZERO);
        // δ still carries the initial-fps prior until a second frame
        // arrives; the gap is then measured from the first frame, and the
        // frozen time discounts one nominal (prior) frame duration.
        assert!((d.avg_frame_duration_ms() - 1000.0 / 30.0).abs() < 1e-9);
        d.on_frame(SimTime::from_secs(6));
        assert_eq!(d.freeze_count, 1);
        assert!((d.freeze_time.as_secs_f64() - (1.0 - 1.0 / 30.0)).abs() < 1e-5);
    }

    #[test]
    fn delta_initialization_clamps_degenerate_fps() {
        // `new(0.0)` must not divide by zero: the fps prior clamps to 1,
        // so δ starts at one second and the threshold at 3δ = 3 s.
        let mut d = FreezeDetector::new(0.0);
        assert!((d.avg_frame_duration_ms() - 1000.0).abs() < 1e-9);
        d.on_frame(SimTime::ZERO);
        d.on_frame(SimTime::from_secs(3));
        assert_eq!(d.freeze_count, 0, "3 s gap is exactly the threshold");
        let mut d = FreezeDetector::new(0.0);
        d.on_frame(SimTime::ZERO);
        d.on_frame(SimTime::from_micros(3_000_001));
        assert_eq!(d.freeze_count, 1);
    }
}
