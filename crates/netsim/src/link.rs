//! Unidirectional links: rate shaping, serialization, drop-tail queueing.
//!
//! A link models one direction of a physical hop: packets serialize one at a
//! time at the profile rate in effect when serialization starts, wait in a
//! byte-bounded drop-tail FIFO while the link is busy, and arrive at the far
//! node one propagation delay after serialization completes.
//!
//! The drop-tail queue is where every effect in the paper ultimately comes
//! from: self-inflicted queueing delay (sensed by delay-based congestion
//! control), loss under overload (sensed by loss-based control and by video
//! receivers as freezes), and the bandwidth contention of §5.

use std::collections::{HashMap, VecDeque};

use vcabench_simcore::{transmission_time, SimDuration, SimTime};

use crate::packet::{FlowId, NodeId, Packet};
use crate::profile::RateProfile;
use crate::trace::FlowTraces;

#[cfg(feature = "testkit-checks")]
use vcabench_simcore::{InvariantLog, Violation};

/// Configuration of one unidirectional link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Rate schedule (the `tc` shaping applied to this hop).
    pub rate: RateProfile,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Drop-tail queue capacity in bytes (excludes the packet in service).
    pub queue_bytes: usize,
    /// Random-impairment model: drop every `n`-th packet deterministically
    /// (`0` = no impairment). Used by the §8 "other network conditions"
    /// extension experiments; periodic loss keeps runs reproducible.
    pub drop_every: u64,
    /// Jitter: each packet's propagation delay is extended by a
    /// deterministic pseudo-random amount in `[0, jitter]` derived from the
    /// packet id (reproducible, and reordering-capable like real jitter).
    pub jitter: SimDuration,
}

impl LinkConfig {
    /// A link with the given constant rate in Mbps, delay, and the default
    /// 64 KiB queue (a typical home-router buffer).
    pub fn mbps(mbps: f64, delay: SimDuration) -> Self {
        LinkConfig {
            rate: RateProfile::constant_mbps(mbps),
            delay,
            queue_bytes: 64 * 1024,
            drop_every: 0,
            jitter: SimDuration::ZERO,
        }
    }

    /// Replace the rate profile.
    pub fn with_profile(mut self, rate: RateProfile) -> Self {
        self.rate = rate;
        self
    }

    /// Replace the queue capacity.
    pub fn with_queue_bytes(mut self, bytes: usize) -> Self {
        self.queue_bytes = bytes;
        self
    }

    /// Impair the link: drop every `n`-th packet (`0` disables). A loss rate
    /// of p maps to `n = (1/p).round()`.
    pub fn with_drop_every(mut self, n: u64) -> Self {
        self.drop_every = n;
        self
    }

    /// Impair the link with per-packet jitter up to `jitter`.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Impair the link with an approximate random-loss probability.
    pub fn with_loss_rate(self, p: f64) -> Self {
        if p <= 0.0 {
            self.with_drop_every(0)
        } else {
            self.with_drop_every((1.0 / p).round().max(1.0) as u64)
        }
    }
}

/// Drop and delivery counters, kept per flow.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Packets fully delivered per flow.
    pub delivered: HashMap<FlowId, u64>,
    /// Packets dropped at the queue tail per flow.
    pub dropped: HashMap<FlowId, u64>,
    /// Bytes delivered per flow.
    pub delivered_bytes: HashMap<FlowId, u64>,
}

impl LinkStats {
    /// Total packets dropped across flows.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Total packets delivered across flows.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.values().sum()
    }

    /// Loss fraction for one flow (drops / (drops + deliveries)).
    pub fn loss_fraction(&self, flow: FlowId) -> f64 {
        let d = self.dropped.get(&flow).copied().unwrap_or(0) as f64;
        let ok = self.delivered.get(&flow).copied().unwrap_or(0) as f64;
        if d + ok == 0.0 {
            0.0
        } else {
            d / (d + ok)
        }
    }
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// The link was idle; serialization starts now and completes at the
    /// contained time (schedule a `LinkReady` event for it).
    StartTx(SimTime),
    /// The packet joined the queue behind the packet in service.
    Queued,
    /// The queue was full; the packet was dropped.
    Dropped,
}

/// Independent ledger the link auditor keeps alongside the link's own
/// bookkeeping (testkit builds only). Cross-checking two separately
/// maintained accounts is what lets the audit catch a forgotten counter
/// increment or a lost packet rather than merely re-deriving the bug.
#[cfg(feature = "testkit-checks")]
#[derive(Debug, Default)]
struct LinkAudit {
    log: InvariantLog,
    /// Ids of accepted packets in service order (front = in service).
    fifo: VecDeque<u64>,
    /// Bytes delivered, counted by the auditor at completion time.
    delivered_bytes: u64,
    /// Largest packet accepted so far (sizes the capacity-check slack).
    max_pkt_bytes: usize,
}

/// One unidirectional link instance.
#[derive(Debug)]
pub struct Link<P> {
    cfg: LinkConfig,
    /// Node packets are delivered to.
    pub to: NodeId,
    queue: VecDeque<Packet<P>>,
    queued_bytes: usize,
    in_service: Option<Packet<P>>,
    /// Packets offered so far (drives the periodic impairment).
    offered: u64,
    /// Delivery/drop counters.
    pub stats: LinkStats,
    /// Departure-side throughput traces (bytes counted when serialization
    /// completes, i.e. the on-wire rate a passive tap would measure).
    pub traces: FlowTraces,
    #[cfg(feature = "testkit-checks")]
    audit: LinkAudit,
}

impl<P> Link<P> {
    /// Create a link delivering to `to`.
    pub fn new(cfg: LinkConfig, to: NodeId) -> Self {
        Link {
            cfg,
            to,
            queue: VecDeque::new(),
            queued_bytes: 0,
            in_service: None,
            offered: 0,
            stats: LinkStats::default(),
            traces: FlowTraces::new(),
            #[cfg(feature = "testkit-checks")]
            audit: LinkAudit::default(),
        }
    }

    /// Configured propagation delay.
    pub fn delay(&self) -> SimDuration {
        self.cfg.delay
    }

    /// Propagation delay for a specific packet, including its deterministic
    /// jitter draw (a splitmix-style hash of the packet id).
    pub fn delay_for(&self, pkt_id: u64) -> SimDuration {
        if self.cfg.jitter.is_zero() {
            return self.cfg.delay;
        }
        let mut z = pkt_id.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let extra = z % (self.cfg.jitter.as_micros() + 1);
        self.cfg.delay + SimDuration::from_micros(extra)
    }

    /// Rate in effect at `t` (bps).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.cfg.rate.rate_at(t)
    }

    /// Bytes currently waiting (excluding the packet in service).
    pub fn backlog_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Packets currently waiting.
    pub fn backlog_packets(&self) -> usize {
        self.queue.len()
    }

    /// Whether the next offered packet will be discarded by the periodic
    /// drop-every-N impairment (as opposed to a full queue). Lets the
    /// engine's telemetry hook classify an upcoming drop before handing
    /// the packet to [`Link::enqueue`].
    pub fn next_offer_hits_impairment(&self) -> bool {
        self.cfg.drop_every > 0 && (self.offered + 1).is_multiple_of(self.cfg.drop_every)
    }

    /// Offer a packet. If the link is idle the packet enters service and the
    /// returned time is when serialization completes; otherwise it queues or
    /// drops.
    pub fn enqueue(&mut self, now: SimTime, pkt: Packet<P>) -> EnqueueOutcome {
        #[cfg(feature = "testkit-checks")]
        let (pkt_id, pkt_size) = (pkt.id, pkt.size);
        self.offered += 1;
        let outcome = if self.cfg.drop_every > 0 && self.offered.is_multiple_of(self.cfg.drop_every)
        {
            *self.stats.dropped.entry(pkt.flow).or_default() += 1;
            EnqueueOutcome::Dropped
        } else if self.in_service.is_none() {
            let done = now + transmission_time(pkt.size, self.rate_at(now));
            self.in_service = Some(pkt);
            EnqueueOutcome::StartTx(done)
        } else if self.queued_bytes + pkt.size <= self.cfg.queue_bytes {
            self.queued_bytes += pkt.size;
            self.queue.push_back(pkt);
            EnqueueOutcome::Queued
        } else {
            *self.stats.dropped.entry(pkt.flow).or_default() += 1;
            EnqueueOutcome::Dropped
        };
        #[cfg(feature = "testkit-checks")]
        self.audit_enqueue(now, pkt_id, pkt_size, outcome);
        outcome
    }

    /// Complete the packet in service. Returns the delivered packet and, if
    /// another packet starts serialization, the time it will complete.
    ///
    /// Panics if no packet is in service (a `LinkReady` event without a
    /// packet indicates an engine bug).
    pub fn complete(&mut self, now: SimTime) -> (Packet<P>, Option<SimTime>) {
        let pkt = self.in_service.take().expect("LinkReady with idle link");
        *self.stats.delivered.entry(pkt.flow).or_default() += 1;
        *self.stats.delivered_bytes.entry(pkt.flow).or_default() += pkt.size as u64;
        self.traces
            .record_packet(pkt.flow, now, pkt.size, pkt.src, pkt.dst);
        let next_done = self.queue.pop_front().map(|next| {
            self.queued_bytes -= next.size;
            let done = now + transmission_time(next.size, self.rate_at(now));
            self.in_service = Some(next);
            done
        });
        #[cfg(feature = "testkit-checks")]
        self.audit_complete(now, pkt.id, pkt.size);
        (pkt, next_done)
    }

    /// Queueing delay a newly arriving packet would currently experience,
    /// assuming the present rate holds (used by tests and diagnostics).
    pub fn estimated_queue_delay(&self, now: SimTime) -> SimDuration {
        let rate = self.rate_at(now);
        let in_service = self.in_service.as_ref().map(|p| p.size).unwrap_or(0);
        transmission_time(self.queued_bytes + in_service, rate)
    }
}

#[cfg(feature = "testkit-checks")]
impl<P> Link<P> {
    fn audit_enqueue(&mut self, now: SimTime, pkt_id: u64, pkt_size: usize, out: EnqueueOutcome) {
        if !matches!(out, EnqueueOutcome::Dropped) {
            self.audit.fifo.push_back(pkt_id);
            self.audit.max_pkt_bytes = self.audit.max_pkt_bytes.max(pkt_size);
        }
        let (backlog, limit) = (self.queued_bytes, self.cfg.queue_bytes);
        self.audit
            .log
            .check(now, "queue-occupancy", backlog <= limit, || {
                format!("backlog {backlog} B exceeds drop-tail limit {limit} B")
            });
        self.audit_conservation(now);
    }

    fn audit_complete(&mut self, now: SimTime, pkt_id: u64, pkt_size: usize) {
        let head = self.audit.fifo.pop_front();
        self.audit
            .log
            .check(now, "fifo-order", head == Some(pkt_id), || {
                format!("delivered pkt {pkt_id} but accepted-ledger head was {head:?}")
            });
        self.audit.delivered_bytes += pkt_size as u64;
        // Cumulative capacity: bytes delivered by `now` must fit the
        // profile's byte budget. Slack: a packet's service rate is fixed when
        // serialization starts, so each rate drop can let one already-started
        // max-size packet exceed the integral, plus one for boundary
        // rounding of the packet completing exactly at `now`.
        let slack = (self.cfg.rate.changes_between(SimTime::ZERO, now) + 1)
            * self.audit.max_pkt_bytes.max(1);
        let budget = self.cfg.rate.max_bytes_between(SimTime::ZERO, now) + slack as f64 + 1.0;
        let delivered = self.audit.delivered_bytes;
        self.audit
            .log
            .check(now, "capacity", (delivered as f64) <= budget, || {
                format!("delivered {delivered} B by {now}, profile allows at most {budget:.0} B")
            });
        let stats_bytes: u64 = self.stats.delivered_bytes.values().sum();
        self.audit
            .log
            .check(now, "stats-bytes", stats_bytes == delivered, || {
                format!("stats count {stats_bytes} delivered bytes, audit ledger {delivered}")
            });
        self.audit_conservation(now);
    }

    /// Packet conservation: everything offered is delivered, dropped, or
    /// still held by the link — and the audit's independently maintained
    /// ledger of accepted ids agrees with the link's own holdings.
    fn audit_conservation(&mut self, now: SimTime) {
        let offered = self.offered;
        let accounted = self.stats.total_delivered()
            + self.stats.total_dropped()
            + self.queue.len() as u64
            + self.in_service.is_some() as u64;
        self.audit
            .log
            .check(now, "packet-conservation", offered == accounted, || {
                format!("offered {offered} != delivered+dropped+backlog+in-service {accounted}")
            });
        let ledger = self.audit.fifo.len();
        let held = self.queue.len() + self.in_service.is_some() as usize;
        self.audit
            .log
            .check(now, "accept-ledger", ledger == held, || {
                format!("accepted ledger holds {ledger} ids, link holds {held} packets")
            });
    }

    /// Violations recorded by this link's auditor.
    pub fn audit_violations(&self) -> &[Violation] {
        self.audit.log.violations()
    }

    /// Number of invariant checks this link's auditor has performed.
    pub fn audit_checks(&self) -> u64 {
        self.audit.log.checks_performed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcabench_simcore::SimTime;

    fn pkt(id: u64, size: usize) -> Packet<()> {
        Packet {
            id,
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            sent_at: SimTime::ZERO,
            payload: (),
        }
    }

    #[test]
    fn idle_link_starts_tx_immediately() {
        let mut l = Link::new(
            LinkConfig::mbps(1.0, SimDuration::from_millis(5)),
            NodeId(1),
        );
        // 1500 B at 1 Mbps = 12 ms serialization.
        match l.enqueue(SimTime::ZERO, pkt(1, 1500)) {
            EnqueueOutcome::StartTx(t) => assert_eq!(t, SimTime::from_millis(12)),
            other => panic!("expected StartTx, got {other:?}"),
        }
    }

    #[test]
    fn busy_link_queues_then_serves_fifo() {
        let mut l = Link::new(LinkConfig::mbps(1.0, SimDuration::ZERO), NodeId(1));
        assert!(matches!(
            l.enqueue(SimTime::ZERO, pkt(1, 1500)),
            EnqueueOutcome::StartTx(_)
        ));
        assert_eq!(
            l.enqueue(SimTime::ZERO, pkt(2, 1000)),
            EnqueueOutcome::Queued
        );
        assert_eq!(l.backlog_packets(), 1);
        let (p1, next) = l.complete(SimTime::from_millis(12));
        assert_eq!(p1.id, 1);
        // 1000 B at 1 Mbps = 8 ms.
        assert_eq!(next, Some(SimTime::from_millis(20)));
        let (p2, next2) = l.complete(SimTime::from_millis(20));
        assert_eq!(p2.id, 2);
        assert!(next2.is_none());
        assert_eq!(l.stats.total_delivered(), 2);
    }

    #[test]
    fn full_queue_drops_tail() {
        let cfg = LinkConfig::mbps(1.0, SimDuration::ZERO).with_queue_bytes(2000);
        let mut l = Link::new(cfg, NodeId(1));
        l.enqueue(SimTime::ZERO, pkt(1, 1500)); // in service
        assert_eq!(
            l.enqueue(SimTime::ZERO, pkt(2, 1500)),
            EnqueueOutcome::Queued
        );
        assert_eq!(
            l.enqueue(SimTime::ZERO, pkt(3, 1500)),
            EnqueueOutcome::Dropped
        );
        assert_eq!(l.stats.total_dropped(), 1);
        assert!(l.stats.loss_fraction(FlowId(1)) > 0.0);
    }

    #[test]
    fn rate_change_applies_to_next_service_start() {
        let profile = RateProfile::constant_mbps(1.0).step(SimTime::from_millis(10), 0.5e6);
        let cfg = LinkConfig::mbps(1.0, SimDuration::ZERO).with_profile(profile);
        let mut l = Link::new(cfg, NodeId(1));
        l.enqueue(SimTime::ZERO, pkt(1, 1500));
        l.enqueue(SimTime::ZERO, pkt(2, 1500));
        let (_, next) = l.complete(SimTime::from_millis(12));
        // Second packet starts at 12 ms when the rate is 0.5 Mbps -> 24 ms tx.
        assert_eq!(next, Some(SimTime::from_millis(36)));
    }

    #[test]
    fn traces_count_departures() {
        let mut l = Link::new(LinkConfig::mbps(8.0, SimDuration::ZERO), NodeId(1));
        l.enqueue(SimTime::ZERO, pkt(1, 1000));
        l.complete(SimTime::from_millis(1));
        assert_eq!(l.traces.total().total_bytes(), 1000);
        assert_eq!(l.traces.flow(FlowId(1)).unwrap().total_bytes(), 1000);
    }

    #[test]
    fn periodic_impairment_drops_every_nth() {
        let cfg = LinkConfig::mbps(1000.0, SimDuration::ZERO).with_drop_every(4);
        let mut l = Link::new(cfg, NodeId(1));
        let mut dropped = 0;
        let mut t = SimTime::ZERO;
        for i in 0..40u64 {
            match l.enqueue(t, pkt(i, 100)) {
                EnqueueOutcome::Dropped => dropped += 1,
                EnqueueOutcome::StartTx(done) => {
                    t = done;
                    let _ = l.complete(t);
                }
                EnqueueOutcome::Queued => unreachable!("link drained each step"),
            }
        }
        assert_eq!(dropped, 10, "exactly every 4th packet dropped");
    }

    #[test]
    fn loss_rate_maps_to_period() {
        let a = LinkConfig::mbps(1.0, SimDuration::ZERO).with_loss_rate(0.01);
        assert_eq!(a.drop_every, 100);
        let b = LinkConfig::mbps(1.0, SimDuration::ZERO).with_loss_rate(0.0);
        assert_eq!(b.drop_every, 0);
        let c = LinkConfig::mbps(1.0, SimDuration::ZERO).with_loss_rate(0.05);
        assert_eq!(c.drop_every, 20);
    }

    #[test]
    #[should_panic(expected = "LinkReady with idle link")]
    fn complete_on_idle_panics() {
        let mut l: Link<()> = Link::new(LinkConfig::mbps(1.0, SimDuration::ZERO), NodeId(1));
        l.complete(SimTime::ZERO);
    }
}
