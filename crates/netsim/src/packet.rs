//! Packets and the identifiers used throughout the simulated network.

use std::fmt;

use vcabench_simcore::SimTime;

/// Identifier of a node (endpoint, router, switch, or server) in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Identifier of an application-level flow (one direction of one stream).
///
/// Flows are assigned by the experiment; all statistics (bitrate traces,
/// drop counts, link shares) are keyed by flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A simulated packet.
///
/// `P` is the protocol payload type chosen by the layer above (vcabench uses
/// a single `Wire` enum covering RTP/RTCP/TCP/QUIC); netsim itself only needs
/// the size and addressing fields.
#[derive(Debug, Clone)]
pub struct Packet<P> {
    /// Globally unique packet id (assigned at send time).
    pub id: u64,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Originating node.
    pub src: NodeId,
    /// Destination node; routed hop-by-hop via static tables.
    pub dst: NodeId,
    /// Total on-wire size, bytes (headers included).
    pub size: usize,
    /// Time the packet entered the network at its source.
    pub sent_at: SimTime,
    /// Protocol payload.
    pub payload: P,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(1).to_string(), "l1");
        assert_eq!(FlowId(9).to_string(), "f9");
    }

    #[test]
    fn packet_is_cloneable() {
        let p = Packet {
            id: 1,
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size: 1200,
            sent_at: SimTime::ZERO,
            payload: "x",
        };
        let q = p.clone();
        assert_eq!(q.size, 1200);
        assert_eq!(q.payload, "x");
    }
}
