//! Time-varying link rate profiles — the simulator's equivalent of `tc`.
//!
//! The paper shapes the access link with Linux traffic control: static
//! shaping for the capacity sweeps (§3), 30-second transient reductions for
//! the disruption experiments (§4), and symmetric caps for the competition
//! experiments (§5). All of these are piecewise-constant rate schedules,
//! which is exactly what [`RateProfile`] expresses.

use vcabench_simcore::{SimDuration, SimTime};

/// A piecewise-constant schedule of link rates in bits per second.
#[derive(Debug, Clone, PartialEq)]
pub struct RateProfile {
    /// `(from, rate_bps)` steps, sorted by `from`; first entry is at t=0.
    steps: Vec<(SimTime, f64)>,
}

impl RateProfile {
    /// A constant rate for the whole simulation.
    pub fn constant(bps: f64) -> Self {
        assert!(bps > 0.0, "rate must be positive");
        RateProfile {
            steps: vec![(SimTime::ZERO, bps)],
        }
    }

    /// Convenience: constant rate given in Mbps.
    pub fn constant_mbps(mbps: f64) -> Self {
        Self::constant(mbps * 1e6)
    }

    /// Append a step: from `at` onward the rate is `bps`.
    ///
    /// Steps must be added in increasing time order.
    pub fn step(mut self, at: SimTime, bps: f64) -> Self {
        assert!(bps > 0.0, "rate must be positive");
        assert!(
            self.steps.last().map(|&(t, _)| at >= t).unwrap_or(true),
            "steps must be time-ordered"
        );
        if let Some(last) = self.steps.last_mut() {
            if last.0 == at {
                last.1 = bps;
                return self;
            }
        }
        self.steps.push((at, bps));
        self
    }

    /// The paper's disruption profile (§4): run at `nominal_bps`, reduce to
    /// `reduced_bps` during `[start, start+duration)`, then restore.
    pub fn disruption(
        nominal_bps: f64,
        reduced_bps: f64,
        start: SimTime,
        duration: SimDuration,
    ) -> Self {
        Self::constant(nominal_bps)
            .step(start, reduced_bps)
            .step(start + duration, nominal_bps)
    }

    /// Rate in effect at time `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match self.steps.binary_search_by(|&(st, _)| st.cmp(&t)) {
            Ok(i) => self.steps[i].1,
            Err(0) => self.steps[0].1, // before first step: use initial rate
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// The next instant strictly after `t` at which the rate changes.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        self.steps.iter().map(|&(st, _)| st).find(|&st| st > t)
    }

    /// Number of rate changes strictly inside `(from, to]`.
    pub fn changes_between(&self, from: SimTime, to: SimTime) -> usize {
        self.steps
            .iter()
            .filter(|&&(st, _)| st > from && st <= to)
            .count()
    }

    /// Upper bound on the bytes a link following this profile can serialize
    /// in `[from, to]`: the integral of the rate over the window, in bytes.
    pub fn max_bytes_between(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let mut bytes = 0.0;
        let mut cursor = from;
        while cursor < to {
            let rate = self.rate_at(cursor);
            let next = self
                .next_change_after(cursor)
                .filter(|&c| c < to)
                .unwrap_or(to);
            bytes += rate / 8.0 * next.saturating_since(cursor).as_secs_f64();
            cursor = next;
        }
        bytes
    }

    /// The raw `(from, rate_bps)` step schedule.
    pub fn steps(&self) -> &[(SimTime, f64)] {
        &self.steps
    }

    /// Rebuild a profile from a raw step schedule (the inverse of
    /// [`RateProfile::steps`]). Steps must be time-ordered, start no later
    /// than t=0, and carry positive rates.
    pub fn from_steps(steps: Vec<(SimTime, f64)>) -> Result<Self, String> {
        let Some(&(first, _)) = steps.first() else {
            return Err("profile needs at least one step".to_string());
        };
        if first != SimTime::ZERO {
            return Err("first step must be at t=0".to_string());
        }
        let mut profile = RateProfile {
            steps: vec![steps[0]],
        };
        if steps[0].1 <= 0.0 || !steps[0].1.is_finite() {
            return Err(format!("rate must be positive and finite: {}", steps[0].1));
        }
        for &(at, bps) in &steps[1..] {
            if bps <= 0.0 || !bps.is_finite() {
                return Err(format!("rate must be positive and finite: {bps}"));
            }
            if profile.steps.last().map(|&(t, _)| at < t).unwrap_or(false) {
                return Err(format!("steps must be time-ordered (step at {at})"));
            }
            profile = profile.step(at, bps);
        }
        Ok(profile)
    }

    /// Minimum rate anywhere in the schedule.
    pub fn min_rate(&self) -> f64 {
        self.steps
            .iter()
            .map(|&(_, r)| r)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum rate anywhere in the schedule.
    pub fn max_rate(&self) -> f64 {
        self.steps.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }
}

impl serde::Serialize for RateProfile {
    /// Canonical form: `{"steps": [[at_us, rate_bps], ...]}`.
    fn to_json_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert(
            "steps".to_string(),
            serde::Serialize::to_json_value(&self.steps),
        );
        serde::Value::Object(m)
    }
}

impl serde::Deserialize for RateProfile {
    /// Accepts the canonical form plus two authoring-friendly shorthands:
    ///
    /// * `{"constant_mbps": 1.0}`
    /// * `{"steps_mbps": [[0, 1.0], [60, 0.25], [90, 1.0]]}` — `(seconds,
    ///   Mbps)` pairs
    /// * `{"disruption_mbps": {"nominal": 1000, "reduced": 0.25,
    ///   "start_secs": 60, "duration_secs": 30}}` — the paper's §4 shape
    /// * `{"steps": [[at_us, rate_bps], ...]}` — canonical
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let fail = |e: String| serde::DeError::msg(e).in_field("RateProfile");
        if let Some(mbps) = v.get("constant_mbps") {
            let mbps = f64::from_json_value(mbps).map_err(|e| e.in_field("constant_mbps"))?;
            if mbps <= 0.0 || !mbps.is_finite() {
                return Err(fail(format!("constant_mbps must be positive: {mbps}")));
            }
            return Ok(RateProfile::constant_mbps(mbps));
        }
        if let Some(steps) = v.get("steps_mbps") {
            let steps: Vec<(f64, f64)> =
                serde::Deserialize::from_json_value(steps).map_err(|e| e.in_field("steps_mbps"))?;
            for &(secs, _) in &steps {
                if !secs.is_finite() || secs < 0.0 {
                    return Err(fail(format!("step time must be non-negative: {secs}")));
                }
            }
            return RateProfile::from_steps(
                steps
                    .into_iter()
                    .map(|(secs, mbps)| (SimTime::from_secs_f64(secs), mbps * 1e6))
                    .collect(),
            )
            .map_err(fail);
        }
        if let Some(d) = v.get("disruption_mbps") {
            let get = |k: &str| -> Result<f64, serde::DeError> {
                d.get(k)
                    .and_then(serde::Value::as_f64)
                    .ok_or_else(|| serde::DeError::missing(k).in_field("disruption_mbps"))
            };
            let nominal = get("nominal")?;
            let reduced = get("reduced")?;
            let start = get("start_secs")?;
            let duration = get("duration_secs")?;
            if nominal <= 0.0 || reduced <= 0.0 {
                return Err(fail("disruption rates must be positive".to_string()));
            }
            return Ok(RateProfile::disruption(
                nominal * 1e6,
                reduced * 1e6,
                SimTime::from_secs_f64(start),
                vcabench_simcore::SimDuration::from_secs_f64(duration),
            ));
        }
        if let Some(steps) = v.get("steps") {
            let steps: Vec<(SimTime, f64)> =
                serde::Deserialize::from_json_value(steps).map_err(|e| e.in_field("steps"))?;
            return RateProfile::from_steps(steps).map_err(fail);
        }
        Err(serde::DeError::msg(
            "RateProfile: expected an object with `constant_mbps`, `steps_mbps`, \
             `disruption_mbps`, or `steps`",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile() {
        let p = RateProfile::constant_mbps(1.0);
        assert_eq!(p.rate_at(SimTime::ZERO), 1e6);
        assert_eq!(p.rate_at(SimTime::from_secs(1000)), 1e6);
        assert_eq!(p.next_change_after(SimTime::ZERO), None);
    }

    #[test]
    fn step_lookup() {
        let p = RateProfile::constant(100.0)
            .step(SimTime::from_secs(10), 50.0)
            .step(SimTime::from_secs(20), 75.0);
        assert_eq!(p.rate_at(SimTime::from_secs(9)), 100.0);
        assert_eq!(p.rate_at(SimTime::from_secs(10)), 50.0);
        assert_eq!(p.rate_at(SimTime::from_secs(15)), 50.0);
        assert_eq!(p.rate_at(SimTime::from_secs(20)), 75.0);
        assert_eq!(p.rate_at(SimTime::from_secs(100)), 75.0);
    }

    #[test]
    fn disruption_shape() {
        let p = RateProfile::disruption(
            1e9,
            0.25e6,
            SimTime::from_secs(60),
            SimDuration::from_secs(30),
        );
        assert_eq!(p.rate_at(SimTime::from_secs(59)), 1e9);
        assert_eq!(p.rate_at(SimTime::from_secs(60)), 0.25e6);
        assert_eq!(p.rate_at(SimTime::from_secs(89)), 0.25e6);
        assert_eq!(p.rate_at(SimTime::from_secs(90)), 1e9);
        assert_eq!(p.min_rate(), 0.25e6);
        assert_eq!(p.max_rate(), 1e9);
    }

    #[test]
    fn next_change_walks_steps() {
        let p = RateProfile::constant(1.0).step(SimTime::from_secs(5), 2.0);
        assert_eq!(
            p.next_change_after(SimTime::ZERO),
            Some(SimTime::from_secs(5))
        );
        assert_eq!(p.next_change_after(SimTime::from_secs(5)), None);
    }

    #[test]
    fn same_time_step_overwrites() {
        let p = RateProfile::constant(1.0)
            .step(SimTime::from_secs(5), 2.0)
            .step(SimTime::from_secs(5), 3.0);
        assert_eq!(p.rate_at(SimTime::from_secs(5)), 3.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_step_panics() {
        let _ = RateProfile::constant(1.0)
            .step(SimTime::from_secs(5), 2.0)
            .step(SimTime::from_secs(4), 3.0);
    }

    #[test]
    fn serde_canonical_round_trip() {
        use serde::{Deserialize, Serialize};
        let p = RateProfile::disruption(
            1e9,
            0.25e6,
            SimTime::from_secs(60),
            SimDuration::from_secs(30),
        );
        let round = RateProfile::from_json_value(&p.to_json_value()).unwrap();
        assert_eq!(p, round);
    }

    #[test]
    fn serde_authoring_shorthands() {
        use serde::Deserialize;
        let c: RateProfile = serde_json::from_str(r#"{"constant_mbps": 1.5}"#).unwrap();
        assert_eq!(c, RateProfile::constant_mbps(1.5));
        let s: RateProfile =
            serde_json::from_str(r#"{"steps_mbps": [[0, 1.0], [60, 0.25], [90, 1.0]]}"#).unwrap();
        assert_eq!(
            s,
            RateProfile::constant_mbps(1.0)
                .step(SimTime::from_secs(60), 0.25e6)
                .step(SimTime::from_secs(90), 1e6)
        );
        let d: RateProfile = serde_json::from_str(
            r#"{"disruption_mbps": {"nominal": 1000, "reduced": 0.25, "start_secs": 60, "duration_secs": 30}}"#,
        )
        .unwrap();
        assert_eq!(
            d,
            RateProfile::disruption(
                1e9,
                0.25e6,
                SimTime::from_secs(60),
                SimDuration::from_secs(30)
            )
        );
        assert!(serde_json::from_str::<RateProfile>(r#"{"constant_mbps": -1}"#).is_err());
        assert!(serde_json::from_str::<RateProfile>(r#"{"steps_mbps": []}"#).is_err());
        assert!(serde_json::from_str::<RateProfile>(r#"{"steps_mbps": [[5, 1.0]]}"#).is_err());
        assert!(RateProfile::from_json_value(&serde::Value::Null).is_err());
    }
}
