//! Time-varying link rate profiles — the simulator's equivalent of `tc`.
//!
//! The paper shapes the access link with Linux traffic control: static
//! shaping for the capacity sweeps (§3), 30-second transient reductions for
//! the disruption experiments (§4), and symmetric caps for the competition
//! experiments (§5). All of these are piecewise-constant rate schedules,
//! which is exactly what [`RateProfile`] expresses.

use vcabench_simcore::{SimDuration, SimTime};

/// A piecewise-constant schedule of link rates in bits per second.
#[derive(Debug, Clone)]
pub struct RateProfile {
    /// `(from, rate_bps)` steps, sorted by `from`; first entry is at t=0.
    steps: Vec<(SimTime, f64)>,
}

impl RateProfile {
    /// A constant rate for the whole simulation.
    pub fn constant(bps: f64) -> Self {
        assert!(bps > 0.0, "rate must be positive");
        RateProfile {
            steps: vec![(SimTime::ZERO, bps)],
        }
    }

    /// Convenience: constant rate given in Mbps.
    pub fn constant_mbps(mbps: f64) -> Self {
        Self::constant(mbps * 1e6)
    }

    /// Append a step: from `at` onward the rate is `bps`.
    ///
    /// Steps must be added in increasing time order.
    pub fn step(mut self, at: SimTime, bps: f64) -> Self {
        assert!(bps > 0.0, "rate must be positive");
        assert!(
            self.steps.last().map(|&(t, _)| at >= t).unwrap_or(true),
            "steps must be time-ordered"
        );
        if let Some(last) = self.steps.last_mut() {
            if last.0 == at {
                last.1 = bps;
                return self;
            }
        }
        self.steps.push((at, bps));
        self
    }

    /// The paper's disruption profile (§4): run at `nominal_bps`, reduce to
    /// `reduced_bps` during `[start, start+duration)`, then restore.
    pub fn disruption(
        nominal_bps: f64,
        reduced_bps: f64,
        start: SimTime,
        duration: SimDuration,
    ) -> Self {
        Self::constant(nominal_bps)
            .step(start, reduced_bps)
            .step(start + duration, nominal_bps)
    }

    /// Rate in effect at time `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match self.steps.binary_search_by(|&(st, _)| st.cmp(&t)) {
            Ok(i) => self.steps[i].1,
            Err(0) => self.steps[0].1, // before first step: use initial rate
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// The next instant strictly after `t` at which the rate changes.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        self.steps.iter().map(|&(st, _)| st).find(|&st| st > t)
    }

    /// Number of rate changes strictly inside `(from, to]`.
    pub fn changes_between(&self, from: SimTime, to: SimTime) -> usize {
        self.steps
            .iter()
            .filter(|&&(st, _)| st > from && st <= to)
            .count()
    }

    /// Upper bound on the bytes a link following this profile can serialize
    /// in `[from, to]`: the integral of the rate over the window, in bytes.
    pub fn max_bytes_between(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let mut bytes = 0.0;
        let mut cursor = from;
        while cursor < to {
            let rate = self.rate_at(cursor);
            let next = self
                .next_change_after(cursor)
                .filter(|&c| c < to)
                .unwrap_or(to);
            bytes += rate / 8.0 * next.saturating_since(cursor).as_secs_f64();
            cursor = next;
        }
        bytes
    }

    /// Minimum rate anywhere in the schedule.
    pub fn min_rate(&self) -> f64 {
        self.steps
            .iter()
            .map(|&(_, r)| r)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum rate anywhere in the schedule.
    pub fn max_rate(&self) -> f64 {
        self.steps.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile() {
        let p = RateProfile::constant_mbps(1.0);
        assert_eq!(p.rate_at(SimTime::ZERO), 1e6);
        assert_eq!(p.rate_at(SimTime::from_secs(1000)), 1e6);
        assert_eq!(p.next_change_after(SimTime::ZERO), None);
    }

    #[test]
    fn step_lookup() {
        let p = RateProfile::constant(100.0)
            .step(SimTime::from_secs(10), 50.0)
            .step(SimTime::from_secs(20), 75.0);
        assert_eq!(p.rate_at(SimTime::from_secs(9)), 100.0);
        assert_eq!(p.rate_at(SimTime::from_secs(10)), 50.0);
        assert_eq!(p.rate_at(SimTime::from_secs(15)), 50.0);
        assert_eq!(p.rate_at(SimTime::from_secs(20)), 75.0);
        assert_eq!(p.rate_at(SimTime::from_secs(100)), 75.0);
    }

    #[test]
    fn disruption_shape() {
        let p = RateProfile::disruption(
            1e9,
            0.25e6,
            SimTime::from_secs(60),
            SimDuration::from_secs(30),
        );
        assert_eq!(p.rate_at(SimTime::from_secs(59)), 1e9);
        assert_eq!(p.rate_at(SimTime::from_secs(60)), 0.25e6);
        assert_eq!(p.rate_at(SimTime::from_secs(89)), 0.25e6);
        assert_eq!(p.rate_at(SimTime::from_secs(90)), 1e9);
        assert_eq!(p.min_rate(), 0.25e6);
        assert_eq!(p.max_rate(), 1e9);
    }

    #[test]
    fn next_change_walks_steps() {
        let p = RateProfile::constant(1.0).step(SimTime::from_secs(5), 2.0);
        assert_eq!(
            p.next_change_after(SimTime::ZERO),
            Some(SimTime::from_secs(5))
        );
        assert_eq!(p.next_change_after(SimTime::from_secs(5)), None);
    }

    #[test]
    fn same_time_step_overwrites() {
        let p = RateProfile::constant(1.0)
            .step(SimTime::from_secs(5), 2.0)
            .step(SimTime::from_secs(5), 3.0);
        assert_eq!(p.rate_at(SimTime::from_secs(5)), 3.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_step_panics() {
        let _ = RateProfile::constant(1.0)
            .step(SimTime::from_secs(5), 2.0)
            .step(SimTime::from_secs(4), 3.0);
    }
}
