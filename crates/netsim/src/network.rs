//! The network: nodes, static routing, links, agents, and the event loop.
//!
//! A [`Network`] owns every link and agent in an experiment and drives a
//! single deterministic event queue. Agents (VCA clients, SFU servers, TCP
//! endpoints, traffic sources) interact with the world only through a
//! [`Ctx`] handed to their callbacks: they can send packets and set timers,
//! and they receive packets addressed to their node. This action-buffer
//! design keeps ownership simple (no `Rc<RefCell>` webs) while preserving a
//! strict total order of effects.

use std::any::Any;

use vcabench_simcore::{EventQueue, SimDuration, SimTime};
use vcabench_telemetry::{EventKind, Profiler, Telemetry};

use crate::link::{EnqueueOutcome, Link, LinkConfig};
use crate::packet::{FlowId, LinkId, NodeId, Packet};

#[cfg(feature = "testkit-checks")]
use vcabench_simcore::{MonotonicClock, SimObserver, Violation};

/// Events processed by the network engine.
#[derive(Debug)]
pub enum NetEvent<P> {
    /// The packet in service on a link finished serialization.
    LinkReady(LinkId),
    /// A packet arrived at a node (after propagation).
    Arrive(NodeId, Packet<P>),
    /// An agent timer fired.
    Timer(NodeId, u64),
}

/// Deferred effects produced by an agent callback.
enum Action<P> {
    Send(Packet<P>),
    Timer { node: NodeId, at: SimTime, id: u64 },
}

/// The interface agents use to act on the world from inside a callback.
pub struct Ctx<'a, P> {
    /// Current simulation time.
    pub now: SimTime,
    /// The node this agent occupies.
    pub node: NodeId,
    actions: &'a mut Vec<Action<P>>,
    next_pkt_id: &'a mut u64,
}

impl<'a, P> Ctx<'a, P> {
    /// Send a packet from this node. Returns the assigned packet id.
    pub fn send(&mut self, flow: FlowId, dst: NodeId, size: usize, payload: P) -> u64 {
        let id = *self.next_pkt_id;
        *self.next_pkt_id += 1;
        self.actions.push(Action::Send(Packet {
            id,
            flow,
            src: self.node,
            dst,
            size,
            sent_at: self.now,
            payload,
        }));
        id
    }

    /// Fire `on_timer(id)` on this agent after `delay`.
    pub fn set_timer_after(&mut self, delay: SimDuration, id: u64) {
        self.actions.push(Action::Timer {
            node: self.node,
            at: self.now + delay,
            id,
        });
    }

    /// Fire `on_timer(id)` on this agent at absolute time `at`.
    pub fn set_timer_at(&mut self, at: SimTime, id: u64) {
        assert!(at >= self.now, "timer in the past");
        self.actions.push(Action::Timer {
            node: self.node,
            at,
            id,
        });
    }
}

/// A protocol endpoint or middlebox attached to a node.
///
/// Implementations must also provide `as_any`/`as_any_mut` so experiments can
/// recover the concrete type after a run to read final statistics.
pub trait Agent<P>: 'static {
    /// Called once when the simulation starts.
    fn start(&mut self, _ctx: &mut Ctx<'_, P>) {}
    /// Called for every packet whose destination is this agent's node.
    fn on_packet(&mut self, ctx: &mut Ctx<'_, P>, pkt: Packet<P>);
    /// Called when a timer set via [`Ctx::set_timer_after`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, P>, _timer: u64) {}
    /// Upcast for typed post-run access.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast for typed post-run access.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Engine throughput counters, maintained O(1) by the event loop.
///
/// These are *measurement* outputs (the `repro bench` harness reads them);
/// they never feed back into simulation behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events popped and handled by [`Network::run_until`] so far.
    pub events_processed: u64,
    /// Peak number of simultaneously pending events in the queue.
    pub peak_queue_depth: u64,
}

/// The simulated network.
pub struct Network<P> {
    now: SimTime,
    started: bool,
    events: EventQueue<NetEvent<P>>,
    /// Pending-event depth and lifetime event counters (see [`EngineStats`]).
    pending_events: u64,
    stats: EngineStats,
    links: Vec<Link<P>>,
    /// Per-node forwarding table, indexed by destination node id (node
    /// counts are small, so a flat table beats hashing on every hop).
    routes: Vec<Vec<Option<LinkId>>>,
    default_route: Vec<Option<LinkId>>,
    agents: Vec<Option<Box<dyn Agent<P>>>>,
    /// Reused action buffer for agent dispatch (see [`Network::apply`]).
    action_scratch: Vec<Action<P>>,
    next_pkt_id: u64,
    /// Packets discarded because no route existed (usually a wiring bug).
    pub unrouted_drops: u64,
    /// Trace hook; disabled by default, so every emission below is one
    /// branch and never constructs the event.
    telemetry: Telemetry,
    /// Last service rate emitted per link (bits, NaN = never sampled);
    /// lets enqueue/dequeue hooks detect shaping-profile steps without a
    /// separate poller.
    tel_rates: Vec<f64>,
    /// Per-event-type wall-clock profiler (`repro --profile`).
    profiler: Option<Profiler>,
    #[cfg(feature = "testkit-checks")]
    clock: MonotonicClock,
    #[cfg(feature = "testkit-checks")]
    observers: Vec<Box<dyn SimObserver>>,
    /// Violations already forwarded to the telemetry recorder.
    #[cfg(feature = "testkit-checks")]
    tel_violations_seen: usize,
}

impl<P: 'static> Network<P> {
    /// Create an empty network.
    pub fn new() -> Self {
        Network {
            now: SimTime::ZERO,
            started: false,
            events: EventQueue::new(),
            pending_events: 0,
            stats: EngineStats::default(),
            links: Vec::new(),
            routes: Vec::new(),
            default_route: Vec::new(),
            agents: Vec::new(),
            action_scratch: Vec::new(),
            next_pkt_id: 0,
            unrouted_drops: 0,
            telemetry: Telemetry::disabled(),
            tel_rates: Vec::new(),
            profiler: None,
            #[cfg(feature = "testkit-checks")]
            clock: MonotonicClock::new(),
            #[cfg(feature = "testkit-checks")]
            observers: Vec::new(),
            #[cfg(feature = "testkit-checks")]
            tel_violations_seen: 0,
        }
    }

    /// Attach a telemetry handle; the engine emits packet
    /// enqueue/dequeue/drop and rate-step events through it (and, with
    /// `testkit-checks` armed, invariant violations in event order).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The engine's telemetry handle (clone it into agents so one
    /// recorder sees the whole run).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Arm the per-event-type wall-clock profiler.
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(Profiler::new());
    }

    /// Read the profiler, if armed.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Detach and return the profiler, if armed.
    pub fn take_profiler(&mut self) -> Option<Profiler> {
        self.profiler.take()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine throughput counters (events handled, peak queue depth).
    pub fn engine_stats(&self) -> EngineStats {
        self.stats
    }

    /// Schedule an engine event, tracking pending depth for [`EngineStats`].
    fn sched(&mut self, at: SimTime, ev: NetEvent<P>) {
        self.pending_events += 1;
        if self.pending_events > self.stats.peak_queue_depth {
            self.stats.peak_queue_depth = self.pending_events;
        }
        self.events.schedule(at, ev);
    }

    /// Add a node with no agent (router/switch).
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.agents.len());
        self.agents.push(None);
        self.routes.push(Vec::new());
        self.default_route.push(None);
        id
    }

    /// Add a node occupied by `agent`.
    pub fn add_agent(&mut self, agent: Box<dyn Agent<P>>) -> NodeId {
        let id = self.add_node();
        self.agents[id.0] = Some(agent);
        id
    }

    /// Attach an agent to an existing (empty) node.
    pub fn set_agent(&mut self, node: NodeId, agent: Box<dyn Agent<P>>) {
        assert!(
            self.agents[node.0].is_none(),
            "node {node} already has an agent"
        );
        self.agents[node.0] = Some(agent);
        if self.started {
            // Late-attached agents still get their start callback.
            self.dispatch_start(node);
        }
    }

    /// Add a unidirectional link from `from` to `to`.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, cfg: LinkConfig) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(Link::new(cfg, to));
        // A link is only useful if some route points at it; set a
        // destination-specific route for the far node by default.
        let table = &mut self.routes[from.0];
        if table.len() <= to.0 {
            table.resize(to.0 + 1, None);
        }
        if table[to.0].is_none() {
            table[to.0] = Some(id);
        }
        id
    }

    /// Add a pair of links between `a` and `b` with per-direction configs.
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        a_to_b: LinkConfig,
        b_to_a: LinkConfig,
    ) -> (LinkId, LinkId) {
        (self.add_link(a, b, a_to_b), self.add_link(b, a, b_to_a))
    }

    /// Route packets at `node` destined to `dst` over `link`.
    pub fn route(&mut self, node: NodeId, dst: NodeId, link: LinkId) {
        let table = &mut self.routes[node.0];
        if table.len() <= dst.0 {
            table.resize(dst.0 + 1, None);
        }
        table[dst.0] = Some(link);
    }

    /// Fallback route at `node` for any unmatched destination.
    pub fn default_route(&mut self, node: NodeId, link: LinkId) {
        self.default_route[node.0] = Some(link);
    }

    /// Immutable access to a link (stats, traces).
    pub fn link(&self, id: LinkId) -> &Link<P> {
        &self.links[id.0]
    }

    /// Typed access to an agent.
    pub fn agent<T: 'static>(&self, node: NodeId) -> &T {
        self.agents[node.0]
            .as_ref()
            .expect("no agent at node")
            .as_any()
            .downcast_ref::<T>()
            .expect("agent type mismatch")
    }

    /// Typed mutable access to an agent.
    pub fn agent_mut<T: 'static>(&mut self, node: NodeId) -> &mut T {
        self.agents[node.0]
            .as_mut()
            .expect("no agent at node")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("agent type mismatch")
    }

    /// Deliver all `start` callbacks. Called automatically by `run_until` if
    /// not invoked explicitly.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.agents.len() {
            self.dispatch_start(NodeId(i));
        }
    }

    /// Run the event loop until simulation time `until` (inclusive of events
    /// at exactly `until`).
    pub fn run_until(&mut self, until: SimTime) {
        self.start();
        while let Some(at) = self.events.peek_time() {
            if at > until {
                break;
            }
            let (at, ev) = self.events.pop().expect("peeked event");
            self.pending_events -= 1;
            self.stats.events_processed += 1;
            debug_assert!(at >= self.now, "time went backwards");
            #[cfg(feature = "testkit-checks")]
            {
                self.clock.on_event(at);
                for obs in &mut self.observers {
                    obs.on_event(at);
                }
            }
            self.now = at;
            if self.profiler.is_some() {
                let label = match &ev {
                    NetEvent::LinkReady(_) => "link_ready",
                    NetEvent::Arrive(..) => "arrive",
                    NetEvent::Timer(..) => "timer",
                };
                let t0 = std::time::Instant::now();
                self.handle(ev);
                let elapsed = t0.elapsed();
                if let Some(p) = self.profiler.as_mut() {
                    p.record(label, elapsed);
                }
            } else {
                self.handle(ev);
            }
            #[cfg(feature = "testkit-checks")]
            self.emit_new_violations();
        }
        self.now = until;
    }

    /// Run for an additional duration.
    pub fn run_for(&mut self, d: SimDuration) {
        self.run_until(self.now + d);
    }

    fn handle(&mut self, ev: NetEvent<P>) {
        match ev {
            NetEvent::LinkReady(lid) => {
                let (pkt, next_done) = self.links[lid.0].complete(self.now);
                if let Some(done) = next_done {
                    self.sched(done, NetEvent::LinkReady(lid));
                }
                if self.telemetry.enabled() {
                    self.note_rate(lid);
                    let queue_bytes = self.links[lid.0].backlog_bytes() as u64;
                    let (link, flow, id, bytes) =
                        (lid.0 as u64, pkt.flow.0, pkt.id, pkt.size as u64);
                    self.telemetry.emit(self.now, || EventKind::PacketDequeued {
                        link,
                        flow,
                        pkt: id,
                        bytes,
                        queue_bytes,
                    });
                }
                let to = self.links[lid.0].to;
                let arrive_at = self.now + self.links[lid.0].delay_for(pkt.id);
                self.sched(arrive_at, NetEvent::Arrive(to, pkt));
            }
            NetEvent::Arrive(node, pkt) => {
                if pkt.dst == node {
                    self.dispatch_packet(node, pkt);
                } else {
                    self.forward(node, pkt);
                }
            }
            NetEvent::Timer(node, id) => {
                self.dispatch_timer(node, id);
            }
        }
    }

    fn forward(&mut self, node: NodeId, pkt: Packet<P>) {
        let link = self.routes[node.0]
            .get(pkt.dst.0)
            .copied()
            .flatten()
            .or(self.default_route[node.0]);
        match link {
            Some(lid) => {
                let enabled = self.telemetry.enabled();
                let impairment = enabled && self.links[lid.0].next_offer_hits_impairment();
                if enabled {
                    self.note_rate(lid);
                }
                let (flow, id, bytes) = (pkt.flow.0, pkt.id, pkt.size as u64);
                let outcome = self.links[lid.0].enqueue(self.now, pkt);
                if let EnqueueOutcome::StartTx(done) = outcome {
                    self.sched(done, NetEvent::LinkReady(lid));
                }
                if enabled {
                    let l = &self.links[lid.0];
                    let (queue_bytes, queue_pkts) =
                        (l.backlog_bytes() as u64, l.backlog_packets() as u64);
                    let link = lid.0 as u64;
                    if matches!(outcome, EnqueueOutcome::Dropped) {
                        self.telemetry.emit(self.now, || EventKind::PacketDropped {
                            link,
                            flow,
                            pkt: id,
                            bytes,
                            queue_bytes,
                            reason: if impairment {
                                "impairment"
                            } else {
                                "queue_full"
                            },
                        });
                    } else {
                        self.telemetry.emit(self.now, || EventKind::PacketEnqueued {
                            link,
                            flow,
                            pkt: id,
                            bytes,
                            queue_bytes,
                            queue_pkts,
                        });
                    }
                }
            }
            None => self.unrouted_drops += 1,
        }
    }

    /// Emit a `rate_step` event when the link's shaping profile has moved
    /// since the last packet touched it. Sampling at packet touch points
    /// keeps the hook event-driven (no poller) while still recording every
    /// step a packet could observe.
    fn note_rate(&mut self, lid: LinkId) {
        if self.tel_rates.len() < self.links.len() {
            self.tel_rates.resize(self.links.len(), f64::NAN);
        }
        let bps = self.links[lid.0].rate_at(self.now);
        if self.tel_rates[lid.0].to_bits() != bps.to_bits() {
            self.tel_rates[lid.0] = bps;
            let link = lid.0 as u64;
            self.telemetry
                .emit(self.now, || EventKind::RateStep { link, bps });
        }
    }

    fn dispatch_start(&mut self, node: NodeId) {
        let mut actions = std::mem::take(&mut self.action_scratch);
        if let Some(mut agent) = self.agents[node.0].take() {
            let mut ctx = Ctx {
                now: self.now,
                node,
                actions: &mut actions,
                next_pkt_id: &mut self.next_pkt_id,
            };
            agent.start(&mut ctx);
            self.agents[node.0] = Some(agent);
        }
        self.apply(&mut actions);
        // Hand the (now empty) buffer back for the next dispatch.
        self.action_scratch = actions;
    }

    fn dispatch_packet(&mut self, node: NodeId, pkt: Packet<P>) {
        let mut actions = std::mem::take(&mut self.action_scratch);
        if let Some(mut agent) = self.agents[node.0].take() {
            let mut ctx = Ctx {
                now: self.now,
                node,
                actions: &mut actions,
                next_pkt_id: &mut self.next_pkt_id,
            };
            agent.on_packet(&mut ctx, pkt);
            self.agents[node.0] = Some(agent);
        }
        self.apply(&mut actions);
        // Hand the (now empty) buffer back for the next dispatch.
        self.action_scratch = actions;
    }

    fn dispatch_timer(&mut self, node: NodeId, id: u64) {
        let mut actions = std::mem::take(&mut self.action_scratch);
        if let Some(mut agent) = self.agents[node.0].take() {
            let mut ctx = Ctx {
                now: self.now,
                node,
                actions: &mut actions,
                next_pkt_id: &mut self.next_pkt_id,
            };
            agent.on_timer(&mut ctx, id);
            self.agents[node.0] = Some(agent);
        }
        self.apply(&mut actions);
        // Hand the (now empty) buffer back for the next dispatch.
        self.action_scratch = actions;
    }

    /// Drain and execute deferred actions. Never re-enters dispatch
    /// (loopback sends go through the event queue), so the single
    /// `action_scratch` buffer the dispatchers reuse is sufficient.
    fn apply(&mut self, actions: &mut Vec<Action<P>>) {
        for a in actions.drain(..) {
            match a {
                Action::Send(pkt) => {
                    if pkt.dst == pkt.src {
                        // Loopback: deliver on the next event cycle.
                        self.sched(self.now, NetEvent::Arrive(pkt.dst, pkt));
                    } else {
                        self.forward(pkt.src, pkt);
                    }
                }
                Action::Timer { node, at, id } => {
                    self.sched(at, NetEvent::Timer(node, id));
                }
            }
        }
    }
}

#[cfg(feature = "testkit-checks")]
impl<P: 'static> Network<P> {
    /// Attach an external observer; it sees the timestamp of every processed
    /// event from this point on.
    pub fn add_observer(&mut self, obs: Box<dyn SimObserver>) {
        self.observers.push(obs);
    }

    /// Every invariant violation recorded anywhere in this network: the
    /// engine clock, attached observers, and each link's auditor.
    pub fn invariant_violations(&self) -> Vec<Violation> {
        use vcabench_simcore::Invariant;
        let mut out: Vec<Violation> = self.clock.violations().to_vec();
        for obs in &self.observers {
            out.extend(obs.violations().iter().cloned());
        }
        for link in &self.links {
            out.extend(link.audit_violations().iter().cloned());
        }
        out.sort_by_key(|v| v.at);
        out
    }

    /// Total invariant checks performed across the engine and all links.
    /// A clean run with zero checks proves nothing, so callers assert on
    /// this too.
    pub fn invariant_checks(&self) -> u64 {
        use vcabench_simcore::Invariant;
        self.clock.checks_performed()
            + self
                .observers
                .iter()
                .map(|o| o.checks_performed())
                .sum::<u64>()
            + self.links.iter().map(|l| l.audit_checks()).sum::<u64>()
    }

    /// Forward invariant violations detected since the last call into the
    /// telemetry recorder, so a failing trace shows the violation amid the
    /// packet events that led up to it. Cheap when nothing is wrong: one
    /// count comparison per processed event.
    fn emit_new_violations(&mut self) {
        if !self.telemetry.enabled() {
            return;
        }
        let n = self.violation_count();
        if n > self.tel_violations_seen {
            let all = self.invariant_violations();
            for v in &all[self.tel_violations_seen..] {
                let (invariant, detail) = (v.invariant.to_string(), v.detail.clone());
                self.telemetry
                    .emit(self.now, || EventKind::InvariantViolation {
                        invariant,
                        detail,
                    });
            }
            self.tel_violations_seen = n;
        }
    }

    /// Total violations recorded so far, without allocating the merged
    /// report that [`Network::invariant_violations`] builds.
    fn violation_count(&self) -> usize {
        use vcabench_simcore::Invariant;
        self.clock.violations().len()
            + self
                .observers
                .iter()
                .map(|o| o.violations().len())
                .sum::<usize>()
            + self
                .links
                .iter()
                .map(|l| l.audit_violations().len())
                .sum::<usize>()
    }

    /// Panic with a readable report if any invariant was violated.
    pub fn assert_invariants(&self) {
        let violations = self.invariant_violations();
        if !violations.is_empty() {
            let report: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
            panic!(
                "{} invariant violation(s):\n{}",
                violations.len(),
                report.join("\n")
            );
        }
    }
}

impl<P: 'static> Default for Network<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcabench_simcore::SimDuration;

    /// Sends `count` packets of `size` bytes at fixed spacing.
    struct Source {
        flow: FlowId,
        dst: NodeId,
        count: u64,
        size: usize,
        spacing: SimDuration,
        sent: u64,
    }

    impl Agent<()> for Source {
        fn start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer_after(SimDuration::ZERO, 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_, ()>, _pkt: Packet<()>) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _timer: u64) {
            if self.sent < self.count {
                ctx.send(self.flow, self.dst, self.size, ());
                self.sent += 1;
                ctx.set_timer_after(self.spacing, 0);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counts received packets and remembers the last arrival time.
    #[derive(Default)]
    struct Sink {
        received: u64,
        bytes: u64,
        last_arrival: Option<SimTime>,
    }

    impl Agent<()> for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx<'_, ()>, pkt: Packet<()>) {
            self.received += 1;
            self.bytes += pkt.size as u64;
            self.last_arrival = Some(ctx.now);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn build_chain(rate_mbps: f64) -> (Network<()>, NodeId, NodeId, NodeId, LinkId) {
        // src -- router -- dst with the shaped hop src->router.
        let mut net = Network::new();
        let src = net.add_node();
        let router = net.add_node();
        let dst = net.add_agent(Box::new(Sink::default()));
        let up = net.add_link(
            src,
            router,
            LinkConfig::mbps(rate_mbps, SimDuration::from_millis(1)),
        );
        let fwd = net.add_link(
            router,
            dst,
            LinkConfig::mbps(1000.0, SimDuration::from_millis(1)),
        );
        net.route(src, dst, up);
        net.route(router, dst, fwd);
        (net, src, router, dst, up)
    }

    #[test]
    fn end_to_end_delivery_and_timing() {
        let (mut net, src, _router, dst, _up) = build_chain(1.0);
        net.set_agent(
            src,
            Box::new(Source {
                flow: FlowId(7),
                dst,
                count: 1,
                size: 1500,
                spacing: SimDuration::from_millis(100),
                sent: 0,
            }),
        );
        net.run_until(SimTime::from_secs(1));
        let sink: &Sink = net.agent(dst);
        assert_eq!(sink.received, 1);
        // 12 ms serialization at 1 Mbps + 1 ms prop + ~0 ms at 1 Gbps + 1 ms prop.
        let t = sink.last_arrival.unwrap();
        assert!(
            t >= SimTime::from_millis(14) && t <= SimTime::from_millis(15),
            "{t}"
        );
    }

    #[test]
    fn conservation_under_overload() {
        // 10 Mbps offered into a 1 Mbps link: sent == delivered + dropped + queued.
        let (mut net, src, _router, dst, up) = build_chain(1.0);
        let count = 500;
        net.set_agent(
            src,
            Box::new(Source {
                flow: FlowId(7),
                dst,
                count,
                size: 1250,
                spacing: SimDuration::from_millis(1), // 10 Mbps
                sent: 0,
            }),
        );
        net.run_until(SimTime::from_secs(2));
        let delivered = net.link(up).stats.total_delivered();
        let dropped = net.link(up).stats.total_dropped();
        let queued = net.link(up).backlog_packets() as u64;
        // +1 for a possible packet in service at cutoff.
        assert!(
            delivered + dropped + queued <= count && delivered + dropped + queued + 1 >= count,
            "delivered={delivered} dropped={dropped} queued={queued}"
        );
        assert!(dropped > 0, "overload must drop");
        let sink: &Sink = net.agent(dst);
        assert_eq!(sink.received, delivered);
    }

    #[test]
    fn telemetry_records_packet_lifecycle() {
        // Same overload setup as `conservation_under_overload`, with a
        // recorder attached: every engine-side drop must appear in the log.
        let (mut net, src, _router, dst, up) = build_chain(1.0);
        let (tel, log) =
            vcabench_telemetry::Telemetry::with_log(vcabench_telemetry::EventLog::unbounded());
        net.set_telemetry(tel);
        net.set_agent(
            src,
            Box::new(Source {
                flow: FlowId(7),
                dst,
                count: 500,
                size: 1250,
                spacing: SimDuration::from_millis(1), // 10 Mbps into 1 Mbps
                sent: 0,
            }),
        );
        net.run_until(SimTime::from_secs(2));
        let dropped = net.link(up).stats.total_dropped();
        assert!(dropped > 0, "overload must drop");
        let log = log.borrow();
        assert_eq!(log.count("packet_drop"), dropped);
        assert!(log.count("packet_enqueue") > 0);
        assert!(log.count("packet_dequeue") > 0);
        // Each link reports its shaping rate the first time it is touched.
        assert!(log.count("rate_step") >= 2);
        // Events land in nondecreasing sim-time order (the JSONL contract).
        let mut last = SimTime::ZERO;
        for ev in log.events() {
            assert!(ev.at >= last, "out of order at {}", ev.at);
            last = ev.at;
        }
    }

    #[test]
    fn shaped_link_matches_configured_rate() {
        let (mut net, src, _router, dst, up) = build_chain(2.0);
        net.set_agent(
            src,
            Box::new(Source {
                flow: FlowId(1),
                dst,
                count: 10_000,
                size: 1250,
                spacing: SimDuration::from_millis(1), // 10 Mbps offered
                sent: 0,
            }),
        );
        net.run_until(SimTime::from_secs(5));
        let rate = net
            .link(up)
            .traces
            .total()
            .rate_mbps_between(SimTime::from_secs(1), SimTime::from_secs(4));
        assert!((rate - 2.0).abs() < 0.1, "measured {rate} Mbps");
    }

    #[test]
    fn unrouted_packet_is_counted() {
        let mut net: Network<()> = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        net.set_agent(
            a,
            Box::new(Source {
                flow: FlowId(0),
                dst: b,
                count: 1,
                size: 100,
                spacing: SimDuration::from_millis(1),
                sent: 0,
            }),
        );
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.unrouted_drops, 1);
    }

    #[test]
    fn default_route_forwards_unknown_destinations() {
        let mut net: Network<()> = Network::new();
        let src = net.add_node();
        let router = net.add_node();
        let dst = net.add_agent(Box::new(Sink::default()));
        let l1 = net.add_link(src, router, LinkConfig::mbps(10.0, SimDuration::ZERO));
        let l2 = net.add_link(router, dst, LinkConfig::mbps(10.0, SimDuration::ZERO));
        net.default_route(src, l1);
        net.default_route(router, l2);
        net.set_agent(
            src,
            Box::new(Source {
                flow: FlowId(0),
                dst,
                count: 3,
                size: 100,
                spacing: SimDuration::from_millis(1),
                sent: 0,
            }),
        );
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.agent::<Sink>(dst).received, 3);
    }

    /// With checks armed, an overloaded link (drops, deep queue, rate
    /// shaping) must still satisfy every audit: conservation, occupancy,
    /// FIFO, capacity, monotonic time.
    #[cfg(feature = "testkit-checks")]
    #[test]
    fn invariants_clean_under_overload() {
        let (mut net, src, _router, dst, up) = build_chain(1.0);
        net.set_agent(
            src,
            Box::new(Source {
                flow: FlowId(7),
                dst,
                count: 500,
                size: 1250,
                spacing: SimDuration::from_millis(1),
                sent: 0,
            }),
        );
        net.run_until(SimTime::from_secs(2));
        assert!(net.link(up).stats.total_dropped() > 0, "overload must drop");
        assert!(net.invariant_checks() > 1_000, "audits actually ran");
        net.assert_invariants();
    }

    /// The telemetry-disabled path must be free: a run with the default
    /// disabled handle is event-for-event identical to one with a live
    /// recorder (telemetry never perturbs simulation), and the disabled
    /// handle reports `enabled() == false` so the engine's hot paths skip
    /// all argument gathering (the recorder layer separately proves the
    /// event closure is never even built).
    #[test]
    fn disabled_telemetry_is_inert() {
        let run = |with_recorder: bool| {
            let (mut net, src, _router, dst, up) = build_chain(2.0);
            let log = if with_recorder {
                let (tel, log) = vcabench_telemetry::Telemetry::with_log(
                    vcabench_telemetry::EventLog::unbounded(),
                );
                net.set_telemetry(tel);
                Some(log)
            } else {
                assert!(!net.telemetry().enabled(), "default handle is disabled");
                None
            };
            net.set_agent(
                src,
                Box::new(Source {
                    flow: FlowId(7),
                    dst,
                    count: 200,
                    size: 1250,
                    spacing: SimDuration::from_millis(1),
                    sent: 0,
                }),
            );
            net.run_until(SimTime::from_secs(1));
            let events = log.map(|l| l.borrow().events().count()).unwrap_or(0);
            (
                net.engine_stats(),
                net.link(up).stats.total_delivered(),
                net.agent::<Sink>(dst).bytes,
                events,
            )
        };
        let (stats_off, delivered_off, bytes_off, events_off) = run(false);
        let (stats_on, delivered_on, bytes_on, events_on) = run(true);
        assert_eq!(stats_off, stats_on, "telemetry changed engine behavior");
        assert_eq!(delivered_off, delivered_on);
        assert_eq!(bytes_off, bytes_on);
        assert_eq!(events_off, 0, "disabled handle must record nothing");
        assert!(events_on > 0, "recorder saw the same run");
    }

    #[test]
    fn loopback_send_delivers_to_self() {
        struct SelfSender {
            got: bool,
        }
        impl Agent<()> for SelfSender {
            fn start(&mut self, ctx: &mut Ctx<'_, ()>) {
                let me = ctx.node;
                ctx.send(FlowId(0), me, 10, ());
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_, ()>, _pkt: Packet<()>) {
                self.got = true;
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net = Network::new();
        let n = net.add_agent(Box::new(SelfSender { got: false }));
        net.run_until(SimTime::from_millis(1));
        assert!(net.agent::<SelfSender>(n).got);
    }
}
