//! Per-flow throughput traces.
//!
//! The paper reports *sent network bitrate* sampled over the call and binned
//! into short intervals (Figures 1, 4, 5, 9, 11–14). We record bytes that
//! finish serialization on a link into fixed-width time bins and convert to
//! Mbps series on demand.

use vcabench_simcore::{SimDuration, SimTime};

use crate::packet::{FlowId, NodeId};

/// Default bin width used by all experiments (100 ms).
pub const DEFAULT_BIN: SimDuration = SimDuration::from_millis(100);

/// Byte counts accumulated into fixed-width time bins.
#[derive(Debug, Clone)]
pub struct BinTrace {
    bin: SimDuration,
    bins: Vec<u64>,
}

impl BinTrace {
    /// Create a trace with the given bin width.
    pub fn new(bin: SimDuration) -> Self {
        assert!(!bin.is_zero(), "bin width must be positive");
        BinTrace {
            bin,
            bins: Vec::new(),
        }
    }

    /// Record `bytes` observed at time `t`.
    pub fn record(&mut self, t: SimTime, bytes: usize) {
        let idx = (t.as_micros() / self.bin.as_micros()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += bytes as u64;
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// Number of bins (up to the last recorded event).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Bytes recorded in `[from, to)`.
    pub fn bytes_between(&self, from: SimTime, to: SimTime) -> u64 {
        if to <= from {
            return 0;
        }
        let lo = (from.as_micros() / self.bin.as_micros()) as usize;
        let hi = to.as_micros().div_ceil(self.bin.as_micros()) as usize;
        self.bins
            .iter()
            .take(hi.min(self.bins.len()))
            .skip(lo)
            .sum()
    }

    /// Average rate over `[from, to)` in Mbps.
    pub fn rate_mbps_between(&self, from: SimTime, to: SimTime) -> f64 {
        let dur = to.saturating_since(from).as_secs_f64();
        if dur <= 0.0 {
            return 0.0;
        }
        self.bytes_between(from, to) as f64 * 8.0 / dur / 1e6
    }

    /// Raw per-bin byte counts re-aggregated into `width`-wide bins, padded
    /// with zeros out to `until`. Integer-exact, so suitable for golden
    /// fixtures that demand byte-identical serialization across runs.
    pub fn binned_bytes(&self, width: SimDuration, until: SimTime) -> Vec<u64> {
        assert!(!width.is_zero(), "bin width must be positive");
        let n = until.as_micros().div_ceil(width.as_micros()) as usize;
        let mut out = vec![0u64; n];
        for (i, &b) in self.bins.iter().enumerate() {
            let t = i as u64 * self.bin.as_micros();
            let idx = (t / width.as_micros()) as usize;
            if idx < out.len() {
                out[idx] += b;
            }
        }
        out
    }

    /// Per-bin bitrate series in Mbps, padded with zeros out to `until`.
    pub fn series_mbps(&self, until: SimTime) -> Vec<f64> {
        let n = until.as_micros().div_ceil(self.bin.as_micros()) as usize;
        let secs = self.bin.as_secs_f64();
        (0..n.max(self.bins.len()))
            .map(|i| self.bins.get(i).copied().unwrap_or(0) as f64 * 8.0 / secs / 1e6)
            .collect()
    }
}

/// Endpoint and volume metadata of one flow as seen on one link.
///
/// A passive fingerprinting stage needs to know, per flow, which way the
/// traffic is heading and how much of it there is — without parsing any
/// payload. The link records the source/destination node of the first
/// packet it delivers for the flow (routing is static, so every later
/// packet agrees) plus running packet/byte totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEndpoints {
    /// Originating node of the flow's packets.
    pub src: NodeId,
    /// Destination node of the flow's packets.
    pub dst: NodeId,
    /// Packets delivered on this link for the flow.
    pub packets: u64,
    /// Bytes delivered on this link for the flow.
    pub bytes: u64,
}

impl FlowEndpoints {
    /// True if the flow is heading into `node` (its destination).
    pub fn is_toward(&self, node: NodeId) -> bool {
        self.dst == node
    }
}

/// Traces for every flow crossing a link, plus the aggregate.
///
/// A link carries a handful of flows, and packets arrive in trains, so the
/// per-flow store is a sorted `Vec` with a last-hit cache: the common case
/// (same flow as the previous packet) is one indexed compare, and misses
/// binary-search instead of hashing.
#[derive(Debug, Clone)]
pub struct FlowTraces {
    bin: SimDuration,
    /// Per-flow traces, sorted by flow id.
    per_flow: Vec<(FlowId, BinTrace)>,
    /// Index of the flow the previous `record` hit.
    last_hit: usize,
    /// Per-flow endpoint metadata, sorted by flow id.
    endpoints: Vec<(FlowId, FlowEndpoints)>,
    total: BinTrace,
}

impl FlowTraces {
    /// Create with the default 100 ms bins.
    pub fn new() -> Self {
        Self::with_bin(DEFAULT_BIN)
    }

    /// Create with a custom bin width.
    pub fn with_bin(bin: SimDuration) -> Self {
        FlowTraces {
            bin,
            per_flow: Vec::new(),
            last_hit: 0,
            endpoints: Vec::new(),
            total: BinTrace::new(bin),
        }
    }

    /// Record `bytes` of `flow` at `t`.
    pub fn record(&mut self, flow: FlowId, t: SimTime, bytes: usize) {
        let idx = match self.per_flow.get(self.last_hit) {
            Some((f, _)) if *f == flow => self.last_hit,
            _ => match self.per_flow.binary_search_by_key(&flow.0, |(f, _)| f.0) {
                Ok(i) => i,
                Err(i) => {
                    self.per_flow.insert(i, (flow, BinTrace::new(self.bin)));
                    i
                }
            },
        };
        self.last_hit = idx;
        self.per_flow[idx].1.record(t, bytes);
        self.total.record(t, bytes);
    }

    /// Record `bytes` of `flow` at `t` along with the packet's endpoints
    /// (the delivery path calls this; [`FlowTraces::record`] stays for
    /// rate-only callers and tests).
    pub fn record_packet(
        &mut self,
        flow: FlowId,
        t: SimTime,
        bytes: usize,
        src: NodeId,
        dst: NodeId,
    ) {
        self.record(flow, t, bytes);
        let idx = match self.endpoints.binary_search_by_key(&flow.0, |(f, _)| f.0) {
            Ok(i) => i,
            Err(i) => {
                self.endpoints.insert(
                    i,
                    (
                        flow,
                        FlowEndpoints {
                            src,
                            dst,
                            packets: 0,
                            bytes: 0,
                        },
                    ),
                );
                i
            }
        };
        let meta = &mut self.endpoints[idx].1;
        meta.packets += 1;
        meta.bytes += bytes as u64;
    }

    /// Endpoint metadata of a single flow, if any packet was delivered
    /// with endpoints recorded.
    pub fn endpoints(&self, flow: FlowId) -> Option<&FlowEndpoints> {
        self.endpoints
            .binary_search_by_key(&flow.0, |(f, _)| f.0)
            .ok()
            .map(|i| &self.endpoints[i].1)
    }

    /// All flows with endpoint metadata, in ascending flow-id order (the
    /// backing store is kept sorted, so this is deterministic).
    pub fn flow_endpoints(&self) -> impl Iterator<Item = (FlowId, &FlowEndpoints)> {
        self.endpoints.iter().map(|(f, m)| (*f, m))
    }

    /// Trace of a single flow, if it ever sent.
    pub fn flow(&self, flow: FlowId) -> Option<&BinTrace> {
        self.per_flow
            .binary_search_by_key(&flow.0, |(f, _)| f.0)
            .ok()
            .map(|i| &self.per_flow[i].1)
    }

    /// Aggregate trace across all flows.
    pub fn total(&self) -> &BinTrace {
        &self.total
    }

    /// All flows seen, in ascending id order (the backing store is kept
    /// sorted, so this is just a walk).
    pub fn flows(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.per_flow.iter().map(|(f, _)| *f)
    }

    /// Combined Mbps series of a set of flows (zero-padded to `until`).
    pub fn combined_series_mbps(&self, flows: &[FlowId], until: SimTime) -> Vec<f64> {
        let n = until.as_micros().div_ceil(self.bin.as_micros()) as usize;
        let mut out = vec![0.0; n];
        for f in flows {
            if let Some(tr) = self.flow(*f) {
                for (i, v) in tr.series_mbps(until).iter().enumerate() {
                    if i < out.len() {
                        out[i] += v;
                    }
                }
            }
        }
        out
    }

    /// Combined bytes of a set of flows in `[from, to)`.
    pub fn combined_bytes_between(&self, flows: &[FlowId], from: SimTime, to: SimTime) -> u64 {
        flows
            .iter()
            .filter_map(|f| self.flow(*f))
            .map(|tr| tr.bytes_between(from, to))
            .sum()
    }

    /// Combined average Mbps of a set of flows over `[from, to)`.
    pub fn combined_rate_mbps(&self, flows: &[FlowId], from: SimTime, to: SimTime) -> f64 {
        let dur = to.saturating_since(from).as_secs_f64();
        if dur <= 0.0 {
            return 0.0;
        }
        self.combined_bytes_between(flows, from, to) as f64 * 8.0 / dur / 1e6
    }
}

impl Default for FlowTraces {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_and_rates() {
        let mut tr = BinTrace::new(SimDuration::from_millis(100));
        // 12500 bytes in 100 ms = 1 Mbps.
        tr.record(SimTime::from_millis(50), 12_500);
        tr.record(SimTime::from_millis(150), 25_000);
        let s = tr.series_mbps(SimTime::from_millis(200));
        assert_eq!(s.len(), 2);
        assert!((s[0] - 1.0).abs() < 1e-9);
        assert!((s[1] - 2.0).abs() < 1e-9);
        assert_eq!(tr.total_bytes(), 37_500);
    }

    #[test]
    fn bytes_between_window() {
        let mut tr = BinTrace::new(SimDuration::from_millis(100));
        for i in 0..10 {
            tr.record(SimTime::from_millis(i * 100 + 1), 100);
        }
        assert_eq!(
            tr.bytes_between(SimTime::from_millis(200), SimTime::from_millis(500)),
            300
        );
        assert_eq!(
            tr.bytes_between(SimTime::ZERO, SimTime::from_secs(100)),
            1000
        );
        assert_eq!(
            tr.bytes_between(SimTime::from_secs(1), SimTime::from_secs(1)),
            0
        );
    }

    #[test]
    fn rate_mbps_between_computes_average() {
        let mut tr = BinTrace::new(SimDuration::from_millis(100));
        // 125_000 bytes over 1 s = 1 Mbps.
        for i in 0..10 {
            tr.record(SimTime::from_millis(i * 100), 12_500);
        }
        let r = tr.rate_mbps_between(SimTime::ZERO, SimTime::from_secs(1));
        assert!((r - 1.0).abs() < 1e-9, "{r}");
    }

    #[test]
    fn flow_traces_aggregate() {
        let mut ft = FlowTraces::new();
        ft.record(FlowId(1), SimTime::from_millis(10), 1000);
        ft.record(FlowId(2), SimTime::from_millis(20), 2000);
        assert_eq!(ft.total().total_bytes(), 3000);
        assert_eq!(ft.flow(FlowId(1)).unwrap().total_bytes(), 1000);
        assert!(ft.flow(FlowId(3)).is_none());
        let combined = ft.combined_bytes_between(
            &[FlowId(1), FlowId(2)],
            SimTime::ZERO,
            SimTime::from_secs(1),
        );
        assert_eq!(combined, 3000);
    }

    #[test]
    fn binned_bytes_reaggregates() {
        let mut tr = BinTrace::new(SimDuration::from_millis(100));
        for i in 0..15 {
            tr.record(SimTime::from_millis(i * 100), 10);
        }
        // 1.5 s of 100 ms bins into 1 s bins, padded to 3 s.
        let b = tr.binned_bytes(SimDuration::from_secs(1), SimTime::from_secs(3));
        assert_eq!(b, vec![100, 50, 0]);
    }

    #[test]
    fn binned_bytes_truncates_when_until_is_short() {
        let mut tr = BinTrace::new(SimDuration::from_millis(100));
        // 3 s of recorded data...
        for i in 0..30 {
            tr.record(SimTime::from_millis(i * 100), 10);
        }
        // ...re-binned only out to 2 s: bins past `until` are dropped.
        let b = tr.binned_bytes(SimDuration::from_secs(1), SimTime::from_secs(2));
        assert_eq!(b, vec![100, 100]);
        assert!(tr
            .binned_bytes(SimDuration::from_secs(1), SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn flows_iterate_in_sorted_order() {
        let mut ft = FlowTraces::new();
        for id in [9u64, 2, 33, 5, 1, 21, 8, 13] {
            ft.record(FlowId(id), SimTime::from_millis(10), 100);
        }
        let ids: Vec<u64> = ft.flows().map(|f| f.0).collect();
        assert_eq!(ids, vec![1, 2, 5, 8, 9, 13, 21, 33]);
    }

    #[test]
    fn flow_endpoints_iterate_in_sorted_order() {
        let mut ft = FlowTraces::new();
        for id in [9u64, 2, 33, 5, 1, 21, 8, 13] {
            ft.record_packet(
                FlowId(id),
                SimTime::from_millis(10),
                100,
                NodeId(id as usize),
                NodeId(id as usize + 1),
            );
        }
        let ids: Vec<u64> = ft.flow_endpoints().map(|(f, _)| f.0).collect();
        assert_eq!(ids, vec![1, 2, 5, 8, 9, 13, 21, 33]);
    }

    #[test]
    fn endpoint_metadata_accumulates_and_reports_direction() {
        let mut ft = FlowTraces::new();
        ft.record_packet(
            FlowId(7),
            SimTime::from_millis(1),
            1000,
            NodeId(3),
            NodeId(4),
        );
        ft.record_packet(
            FlowId(7),
            SimTime::from_millis(2),
            500,
            NodeId(3),
            NodeId(4),
        );
        let m = ft.endpoints(FlowId(7)).expect("metadata recorded");
        assert_eq!(m.src, NodeId(3));
        assert_eq!(m.dst, NodeId(4));
        assert_eq!(m.packets, 2);
        assert_eq!(m.bytes, 1500);
        assert!(m.is_toward(NodeId(4)));
        assert!(!m.is_toward(NodeId(3)));
        assert!(ft.endpoints(FlowId(8)).is_none());
        // Rate-only recording leaves no endpoint metadata behind.
        ft.record(FlowId(8), SimTime::from_millis(3), 100);
        assert!(ft.endpoints(FlowId(8)).is_none());
        assert_eq!(ft.total().total_bytes(), 1600);
    }

    #[test]
    fn series_zero_padded() {
        let tr = BinTrace::new(SimDuration::from_millis(100));
        let s = tr.series_mbps(SimTime::from_secs(1));
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&v| v == 0.0));
    }
}
