//! Topology builders matching the paper's laboratory setups (§2.2, §5, §6).
//!
//! Three shapes cover every experiment:
//!
//! * **Two-party** (§2.2): client C1 behind a shaped access link to the home
//!   router, a fast path to the VCA relay/SFU server, and an unconstrained
//!   counter-party C2.
//! * **Competition** (§5, Fig 7): C1 and the competing host F1 sit behind a
//!   switch; the switch↔router link is the shaped shared bottleneck; C2, the
//!   VCA server, and the competing application's remote endpoint F2 are all
//!   on the far side.
//! * **Multiparty** (§6): N clients, each with its own access link, all
//!   connected to one SFU server.
//!
//! Builders create nodes, links, and routes; the caller attaches agents to
//! the returned node ids afterwards.

use vcabench_simcore::SimDuration;

use crate::link::LinkConfig;
use crate::network::Network;
use crate::packet::{LinkId, NodeId};
use crate::profile::RateProfile;

/// Default one-way delay of the access hop (client ↔ home router).
pub const ACCESS_DELAY: SimDuration = SimDuration::from_millis(2);
/// Default one-way delay of the wide-area hop (router ↔ VCA server).
pub const WAN_DELAY: SimDuration = SimDuration::from_millis(15);
/// Rate of unconstrained hops: the paper's dedicated 1 Gbps line.
pub const UNCONSTRAINED_MBPS: f64 = 1000.0;
/// Queue size of the shaped access hop. 32 KiB ≈ 250 ms of buffer at 1 Mbps,
/// in the range of consumer router defaults.
pub const ACCESS_QUEUE_BYTES: usize = 32 * 1024;

fn fast(delay: SimDuration) -> LinkConfig {
    LinkConfig::mbps(UNCONSTRAINED_MBPS, delay).with_queue_bytes(1 << 20)
}

fn shaped(profile: RateProfile, delay: SimDuration) -> LinkConfig {
    LinkConfig::mbps(1.0, delay)
        .with_profile(profile)
        .with_queue_bytes(ACCESS_QUEUE_BYTES)
}

/// Node and link ids of the two-party topology.
#[derive(Debug, Clone, Copy)]
pub struct TwoParty {
    /// The measured client (behind the shaped link).
    pub c1: NodeId,
    /// C1's home router.
    pub router: NodeId,
    /// The VCA relay/SFU server.
    pub server: NodeId,
    /// The unconstrained counter-party.
    pub c2: NodeId,
    /// Shaped uplink C1 → router.
    pub c1_up: LinkId,
    /// Shaped downlink router → C1.
    pub c1_down: LinkId,
    /// Router → server (unconstrained WAN).
    pub wan_up: LinkId,
    /// Server → router.
    pub wan_down: LinkId,
    /// C2 → server.
    pub c2_up: LinkId,
    /// Server → C2.
    pub c2_down: LinkId,
}

/// Build the §2.2 two-party topology with independent up/down shaping
/// profiles on C1's access link.
pub fn two_party<P: 'static>(net: &mut Network<P>, up: RateProfile, down: RateProfile) -> TwoParty {
    let c1 = net.add_node();
    let router = net.add_node();
    let server = net.add_node();
    let c2 = net.add_node();

    let c1_up = net.add_link(c1, router, shaped(up, ACCESS_DELAY));
    let c1_down = net.add_link(router, c1, shaped(down, ACCESS_DELAY));
    let wan_up = net.add_link(router, server, fast(WAN_DELAY));
    let wan_down = net.add_link(server, router, fast(WAN_DELAY));
    let c2_up = net.add_link(c2, server, fast(WAN_DELAY));
    let c2_down = net.add_link(server, c2, fast(WAN_DELAY));

    // Everything C1 sends goes up its access link; the router forwards
    // upstream to the server side and downstream to C1.
    net.default_route(c1, c1_up);
    net.default_route(router, wan_up);
    net.route(router, c1, c1_down);
    net.default_route(c2, c2_up);
    net.route(server, c1, wan_down);
    net.route(server, c2, c2_down);

    TwoParty {
        c1,
        router,
        server,
        c2,
        c1_up,
        c1_down,
        wan_up,
        wan_down,
        c2_up,
        c2_down,
    }
}

/// Node and link ids of the §5 competition topology (Fig 7).
#[derive(Debug, Clone, Copy)]
pub struct Competition {
    /// Incumbent VCA client.
    pub c1: NodeId,
    /// Competing host (second VCA client, iPerf3 client, or streaming client).
    pub f1: NodeId,
    /// The switch in front of the shared bottleneck.
    pub switch: NodeId,
    /// Home router on the far side of the bottleneck.
    pub router: NodeId,
    /// VCA server for the incumbent call.
    pub vca_server: NodeId,
    /// Remote endpoint of the competing application (second VCA server,
    /// iPerf3 server, or CDN).
    pub f_server: NodeId,
    /// Counter-party of the incumbent call.
    pub c2: NodeId,
    /// Counter-party of a competing VCA call (unused otherwise).
    pub f2: NodeId,
    /// Shared bottleneck switch → router (uplink direction).
    pub bottleneck_up: LinkId,
    /// Shared bottleneck router → switch (downlink direction).
    pub bottleneck_down: LinkId,
}

/// Build the competition topology. The bottleneck is shaped symmetrically
/// with `up`/`down` profiles; all other hops are unconstrained.
pub fn competition<P: 'static>(
    net: &mut Network<P>,
    up: RateProfile,
    down: RateProfile,
) -> Competition {
    let c1 = net.add_node();
    let f1 = net.add_node();
    let switch = net.add_node();
    let router = net.add_node();
    let vca_server = net.add_node();
    let f_server = net.add_node();
    let c2 = net.add_node();
    let f2 = net.add_node();

    // LAN hops: sub-millisecond, gigabit.
    let lan = SimDuration::from_micros(200);
    let (c1_up, c1_down) = net.add_duplex(c1, switch, fast(lan), fast(lan));
    let (f1_up, f1_down) = net.add_duplex(f1, switch, fast(lan), fast(lan));
    let bottleneck_up = net.add_link(switch, router, shaped(up, ACCESS_DELAY));
    let bottleneck_down = net.add_link(router, switch, shaped(down, ACCESS_DELAY));
    let (wan_up, wan_down) = net.add_duplex(router, vca_server, fast(WAN_DELAY), fast(WAN_DELAY));
    // The iPerf3 server in the paper is close (2 ms RTT); CDNs are farther.
    // We place F2's server one WAN hop away and let experiments tune delay by
    // reconfiguring if needed.
    let (fwan_up, fwan_down) = net.add_duplex(router, f_server, fast(WAN_DELAY), fast(WAN_DELAY));
    let (c2_up, c2_down) = net.add_duplex(c2, vca_server, fast(WAN_DELAY), fast(WAN_DELAY));
    let (f2_up, f2_down) = net.add_duplex(f2, f_server, fast(WAN_DELAY), fast(WAN_DELAY));

    net.default_route(c1, c1_up);
    net.default_route(f1, f1_up);
    net.default_route(switch, bottleneck_up);
    net.route(switch, c1, c1_down);
    net.route(switch, f1, f1_down);
    net.default_route(router, wan_up);
    net.route(router, c1, bottleneck_down);
    net.route(router, f1, bottleneck_down);
    net.route(router, f_server, fwan_up);
    net.route(router, f2, fwan_up);
    net.default_route(c2, c2_up);
    net.default_route(f2, f2_up);
    net.route(vca_server, c1, wan_down);
    net.route(vca_server, c2, c2_down);
    net.route(f_server, f1, fwan_down);
    net.route(f_server, f2, f2_down);

    Competition {
        c1,
        f1,
        switch,
        router,
        vca_server,
        f_server,
        c2,
        f2,
        bottleneck_up,
        bottleneck_down,
    }
}

/// Node and link ids of the §6 multiparty topology.
#[derive(Debug, Clone)]
pub struct Multiparty {
    /// Clients C1..Cn. C1 is the measured client.
    pub clients: Vec<NodeId>,
    /// The SFU server all clients connect to.
    pub server: NodeId,
    /// Shaped uplink of each client.
    pub uplinks: Vec<LinkId>,
    /// Shaped downlink of each client.
    pub downlinks: Vec<LinkId>,
}

/// Build an N-party star: each client has its own (independently shaped)
/// access path to the single SFU server.
pub fn multiparty<P: 'static>(
    net: &mut Network<P>,
    n: usize,
    up: RateProfile,
    down: RateProfile,
) -> Multiparty {
    assert!(n >= 2, "a call needs at least two clients");
    let server = net.add_node();
    let mut clients = Vec::with_capacity(n);
    let mut uplinks = Vec::with_capacity(n);
    let mut downlinks = Vec::with_capacity(n);
    for _ in 0..n {
        let c = net.add_node();
        let ul = net.add_link(c, server, shaped(up.clone(), ACCESS_DELAY + WAN_DELAY));
        let dl = net.add_link(server, c, shaped(down.clone(), ACCESS_DELAY + WAN_DELAY));
        net.default_route(c, ul);
        net.route(server, c, dl);
        clients.push(c);
        uplinks.push(ul);
        downlinks.push(dl);
    }
    Multiparty {
        clients,
        server,
        uplinks,
        downlinks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Agent, Ctx};
    use crate::packet::{FlowId, Packet};
    use std::any::Any;
    use vcabench_simcore::SimTime;

    struct Ping {
        dst: NodeId,
        echoed: bool,
    }
    impl Agent<u8> for Ping {
        fn start(&mut self, ctx: &mut Ctx<'_, u8>) {
            ctx.send(FlowId(1), self.dst, 100, 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_, u8>, pkt: Packet<u8>) {
            assert_eq!(pkt.payload, 1);
            self.echoed = true;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Echo;
    impl Agent<u8> for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_, u8>, pkt: Packet<u8>) {
            ctx.send(pkt.flow, pkt.src, pkt.size, 1);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn two_party_round_trip() {
        let mut net: Network<u8> = Network::new();
        let topo = two_party(
            &mut net,
            RateProfile::constant_mbps(10.0),
            RateProfile::constant_mbps(10.0),
        );
        net.set_agent(
            topo.c1,
            Box::new(Ping {
                dst: topo.c2,
                echoed: false,
            }),
        );
        net.set_agent(topo.c2, Box::new(Echo));
        net.run_until(SimTime::from_secs(1));
        assert!(net.agent::<Ping>(topo.c1).echoed, "C1 <-> C2 path broken");
        assert_eq!(net.unrouted_drops, 0);
    }

    #[test]
    fn competition_paths_work() {
        let mut net: Network<u8> = Network::new();
        let topo = competition(
            &mut net,
            RateProfile::constant_mbps(10.0),
            RateProfile::constant_mbps(10.0),
        );
        net.set_agent(
            topo.c1,
            Box::new(Ping {
                dst: topo.c2,
                echoed: false,
            }),
        );
        net.set_agent(topo.c2, Box::new(Echo));
        net.set_agent(
            topo.f1,
            Box::new(Ping {
                dst: topo.f_server,
                echoed: false,
            }),
        );
        net.set_agent(topo.f_server, Box::new(Echo));
        net.run_until(SimTime::from_secs(1));
        assert!(net.agent::<Ping>(topo.c1).echoed);
        assert!(net.agent::<Ping>(topo.f1).echoed);
        assert_eq!(net.unrouted_drops, 0);
        // Both flows crossed the shared bottleneck.
        let up = net.link(topo.bottleneck_up);
        assert!(up.stats.total_delivered() >= 2);
    }

    #[test]
    fn multiparty_star_connects_all() {
        let mut net: Network<u8> = Network::new();
        let topo = multiparty(
            &mut net,
            4,
            RateProfile::constant_mbps(10.0),
            RateProfile::constant_mbps(10.0),
        );
        // Every client pings the server.
        for &c in &topo.clients {
            net.set_agent(
                c,
                Box::new(Ping {
                    dst: topo.server,
                    echoed: false,
                }),
            );
        }
        net.set_agent(topo.server, Box::new(Echo));
        net.run_until(SimTime::from_secs(1));
        for &c in &topo.clients {
            assert!(net.agent::<Ping>(c).echoed, "client {c} unreachable");
        }
        assert_eq!(net.unrouted_drops, 0);
    }
}
