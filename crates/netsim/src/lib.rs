//! # vcabench-netsim
//!
//! Packet-level network simulator for vcabench: links with `tc`-style rate
//! profiles and drop-tail queues, static-routed topologies, and per-flow
//! throughput traces.
//!
//! This crate plays the role of the paper's laboratory network (§2.2): the
//! two laptops, home router, switch, and shaped access links become nodes
//! and [`Link`]s; Linux `tc` shaping becomes a [`RateProfile`]; the passive
//! traffic captures become [`trace::FlowTraces`]. VCA clients, servers, and
//! competing applications attach to nodes as [`Agent`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod network;
pub mod packet;
pub mod profile;
pub mod topology;
pub mod trace;

pub use link::{EnqueueOutcome, Link, LinkConfig, LinkStats};
pub use network::{Agent, Ctx, EngineStats, NetEvent, Network};
pub use packet::{FlowId, LinkId, NodeId, Packet};
pub use profile::RateProfile;
pub use trace::{BinTrace, FlowEndpoints, FlowTraces};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use vcabench_simcore::{SimDuration, SimTime};

    proptest! {
        /// Multiparty topologies of any size wire every client to the server
        /// and back (no unrouted packets for any pair).
        #[test]
        fn multiparty_topology_fully_routed(n in 2usize..12) {
            use crate::network::{Agent, Ctx};
            use std::any::Any;

            struct Ping { dst: NodeId, got: bool }
            impl Agent<u8> for Ping {
                fn start(&mut self, ctx: &mut Ctx<'_, u8>) {
                    ctx.send(FlowId(1), self.dst, 64, 0);
                }
                fn on_packet(&mut self, _ctx: &mut Ctx<'_, u8>, pkt: Packet<u8>) {
                    if pkt.payload == 1 { self.got = true; }
                }
                fn as_any(&self) -> &dyn Any { self }
                fn as_any_mut(&mut self) -> &mut dyn Any { self }
            }
            struct Echo;
            impl Agent<u8> for Echo {
                fn on_packet(&mut self, ctx: &mut Ctx<'_, u8>, pkt: Packet<u8>) {
                    ctx.send(pkt.flow, pkt.src, pkt.size, 1);
                }
                fn as_any(&self) -> &dyn Any { self }
                fn as_any_mut(&mut self) -> &mut dyn Any { self }
            }

            let mut net: Network<u8> = Network::new();
            let topo = topology::multiparty(
                &mut net,
                n,
                RateProfile::constant_mbps(10.0),
                RateProfile::constant_mbps(10.0),
            );
            for &c in &topo.clients {
                net.set_agent(c, Box::new(Ping { dst: topo.server, got: false }));
            }
            net.set_agent(topo.server, Box::new(Echo));
            net.run_until(SimTime::from_secs(2));
            prop_assert_eq!(net.unrouted_drops, 0);
            for &c in &topo.clients {
                prop_assert!(net.agent::<Ping>(c).got, "client {} unreachable", c);
            }
        }

        /// Jitter never delivers a packet before the base propagation delay
        /// and never beyond base + jitter.
        #[test]
        fn jitter_bounded(pkt_id in 0u64..10_000, jitter_ms in 1u64..200) {
            let cfg = link::LinkConfig::mbps(10.0, SimDuration::from_millis(10))
                .with_jitter(SimDuration::from_millis(jitter_ms));
            let l: link::Link<()> = link::Link::new(cfg, NodeId(1));
            let d = l.delay_for(pkt_id);
            prop_assert!(d >= SimDuration::from_millis(10));
            prop_assert!(d <= SimDuration::from_millis(10 + jitter_ms));
        }

        /// Over any measurement window, a link's delivered bytes never imply
        /// a rate above its configured capacity (plus quantization slack).
        #[test]
        fn link_never_exceeds_rate(
            rate_kbps in 100u64..10_000,
            sizes in proptest::collection::vec(64usize..1500, 10..200),
        ) {
            let rate = rate_kbps as f64 * 1000.0;
            let cfg = link::LinkConfig::mbps(1.0, SimDuration::ZERO)
                .with_profile(RateProfile::constant(rate))
                .with_queue_bytes(usize::MAX >> 1);
            let mut l: link::Link<()> = link::Link::new(cfg, NodeId(1));
            let mut now = SimTime::ZERO;
            let mut pending: Option<SimTime> = None;
            // Offer everything at t=0; drain by following completion times.
            for (i, &s) in sizes.iter().enumerate() {
                let pkt = Packet { id: i as u64, flow: FlowId(0), src: NodeId(0), dst: NodeId(1), size: s, sent_at: now, payload: () };
                if let link::EnqueueOutcome::StartTx(t) = l.enqueue(now, pkt) {
                    pending = Some(t);
                }
            }
            let mut last_done = SimTime::ZERO;
            while let Some(t) = pending {
                now = t;
                last_done = t;
                let (_, next) = l.complete(now);
                pending = next;
            }
            let total_bytes: usize = sizes.iter().sum();
            let implied = total_bytes as f64 * 8.0 / last_done.as_secs_f64();
            prop_assert!(implied <= rate * 1.01, "implied {implied} > {rate}");
        }

        /// Byte conservation at the queue: every offered packet is exactly one
        /// of delivered, dropped, queued, or in service.
        #[test]
        fn queue_conserves_packets(
            sizes in proptest::collection::vec(64usize..1500, 1..100),
            queue_bytes in 1000usize..20_000,
        ) {
            let cfg = link::LinkConfig::mbps(0.5, SimDuration::ZERO).with_queue_bytes(queue_bytes);
            let mut l: link::Link<()> = link::Link::new(cfg, NodeId(1));
            let mut dropped_now = 0u64;
            for (i, &s) in sizes.iter().enumerate() {
                let pkt = Packet { id: i as u64, flow: FlowId(0), src: NodeId(0), dst: NodeId(1), size: s, sent_at: SimTime::ZERO, payload: () };
                if matches!(l.enqueue(SimTime::ZERO, pkt), link::EnqueueOutcome::Dropped) {
                    dropped_now += 1;
                }
            }
            let in_service = 1u64; // first packet always enters service
            prop_assert_eq!(
                sizes.len() as u64,
                in_service + l.backlog_packets() as u64 + dropped_now
            );
            prop_assert_eq!(l.stats.total_dropped(), dropped_now);
        }
    }
}
