//! Cross-crate integration: the declarative campaign pipeline end to end —
//! spec files → expansion → parallel execution → the content-addressed
//! result store — driven through the same public API `repro campaign` uses.

use std::path::PathBuf;

use vcabench::prelude::*;

/// The spec file CI smokes; keep it parsing and expanding as documented.
#[test]
fn shipped_smoke_spec_expands_to_its_documented_grid() {
    let text = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/specs/smoke.json"),
    )
    .expect("examples/specs/smoke.json exists");
    let campaign = CampaignSpec::from_json(&text).expect("smoke spec parses");
    let runs = campaign.expand().expect("smoke spec expands");
    // 3 kinds × 3 uplink caps × 2 seeds, as the README documents.
    assert_eq!(runs.len(), 18);
    assert_eq!(runs[0].label, "shaped_meet_up0_5_s1");
    assert_eq!(runs[17].label, "shaped_zoom_up2_s2");
    // Round trip through the serializer preserves the expansion exactly.
    let back = CampaignSpec::from_json(&campaign.to_json()).unwrap();
    assert_eq!(back.expand().unwrap(), runs);
}

#[test]
fn cached_campaign_is_deterministic_across_jobs_and_invocations() {
    let base = std::env::temp_dir().join(format!("vcabench-it-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let campaign = CampaignSpec {
        name: "it".to_string(),
        scenarios: vec![ScenarioTemplate {
            label: None,
            base: ScenarioSpec::TwoParty(TwoPartySpec {
                kind: VcaKind::Zoom,
                up: RateProfile::constant_mbps(1000.0),
                down: RateProfile::constant_mbps(1000.0),
                duration_secs: 20.0,
                seed: 1,
                knobs: None,
            }),
            axes: Some(Axes {
                kinds: Some(vec![VcaKind::Meet, VcaKind::Zoom]),
                up_mbps: Some(vec![0.5, 1.0]),
                down_mbps: None,
                capacity_mbps: None,
                competitors: None,
                seeds: Some(SeedAxis::List(vec![1])),
            }),
        }],
    };

    let serial_dir = base.join("serial");
    let parallel_dir = base.join("parallel");
    let serial = run_campaign_cached(&campaign, 1, &serial_dir, false).unwrap();
    let parallel = run_campaign_cached(&campaign, 4, &parallel_dir, false).unwrap();
    assert_eq!((serial.total, serial.computed, serial.cached), (4, 4, 0));
    assert_eq!(parallel.results, serial.results);
    assert_eq!(
        std::fs::read(serial_dir.join("it.jsonl")).unwrap(),
        std::fs::read(parallel_dir.join("it.jsonl")).unwrap(),
        "--jobs 4 store must be byte-identical to --jobs 1"
    );

    // Second invocation: everything served from cache, store untouched.
    let before = std::fs::read(serial_dir.join("it.jsonl")).unwrap();
    let again = run_campaign_cached(&campaign, 4, &serial_dir, false).unwrap();
    assert_eq!((again.total, again.computed, again.cached), (4, 0, 4));
    assert_eq!(again.results, serial.results);
    assert_eq!(before, std::fs::read(serial_dir.join("it.jsonl")).unwrap());

    let _ = std::fs::remove_dir_all(&base);
}
