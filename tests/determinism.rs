//! Cross-crate integration: determinism guarantees of the whole pipeline.
//!
//! Every experiment must be exactly reproducible from its seed — this is
//! what makes the regenerated tables and figures meaningful.

use vcabench::prelude::*;

fn run_once(seed: u64) -> (Vec<f64>, u64) {
    let mut call = two_party_call(
        VcaKind::Zoom,
        RateProfile::constant_mbps(1.0),
        RateProfile::constant_mbps(1000.0),
        seed,
    );
    call.net.run_until(SimTime::from_secs(40));
    let series = call
        .net
        .link(call.topo.c1_up)
        .traces
        .total()
        .series_mbps(SimTime::from_secs(40));
    let c1: &VcaClient = call.net.agent(call.topo.c1);
    (series, c1.frames_decoded_from(1))
}

#[test]
fn same_seed_same_everything() {
    let (a_series, a_frames) = run_once(7);
    let (b_series, b_frames) = run_once(7);
    assert_eq!(a_frames, b_frames);
    assert_eq!(a_series.len(), b_series.len());
    for (i, (x, y)) in a_series.iter().zip(&b_series).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "series diverged at bin {i}");
    }
}

#[test]
fn different_seeds_differ() {
    let (a_series, _) = run_once(7);
    let (b_series, _) = run_once(8);
    let identical = a_series
        .iter()
        .zip(&b_series)
        .all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(!identical, "different seeds must perturb the source noise");
}

#[test]
fn competition_runs_are_deterministic() {
    let cfg = CompetitionConfig::paper(VcaKind::Meet, Competitor::IperfUp, 2.0, 3);
    let a = vcabench::harness::run_competition(&cfg);
    let b = vcabench::harness::run_competition(&cfg);
    let ra =
        TwoPartyOutcome::rate_between(&a.inc_up, SimTime::from_secs(60), SimTime::from_secs(120));
    let rb =
        TwoPartyOutcome::rate_between(&b.inc_up, SimTime::from_secs(60), SimTime::from_secs(120));
    assert_eq!(ra.to_bits(), rb.to_bits());
}
