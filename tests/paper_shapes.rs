//! Cross-crate integration: the paper's headline findings, end to end,
//! exercised through the public facade (`vcabench::prelude`).
//!
//! These are condensed versions of the claims in the paper's Table 1; the
//! full regeneration (all capacities, repetitions, and CIs) lives in the
//! `repro` binary and EXPERIMENTS.md.

use vcabench::prelude::*;
use vcabench::stats::time_to_recovery;

const OPEN: f64 = 1000.0;

fn steady_rate(series: &[f64], from_s: u64, to_s: u64) -> f64 {
    TwoPartyOutcome::rate_between(series, SimTime::from_secs(from_s), SimTime::from_secs(to_s))
}

/// Table 1 row 1: "average utilization on an unconstrained link ranges from
/// 0.8 to 1.9 Mbps" — and the per-VCA orderings of Table 2.
#[test]
fn unconstrained_utilization_bands() {
    let mut rates = Vec::new();
    for kind in VcaKind::NATIVE {
        let out = vcabench::harness::run_two_party(
            kind,
            RateProfile::constant_mbps(OPEN),
            RateProfile::constant_mbps(OPEN),
            SimDuration::from_secs(90),
            42,
        );
        let up = steady_rate(&out.up_series, 30, 90);
        let down = steady_rate(&out.down_series, 30, 90);
        rates.push((kind, up, down));
    }
    for &(kind, up, down) in &rates {
        assert!(
            (0.6..=2.2).contains(&up) && (0.6..=2.2).contains(&down),
            "{}: {up}/{down} outside the paper's band",
            kind.name()
        );
    }
    let get = |k: VcaKind| rates.iter().find(|r| r.0 == k).copied().unwrap();
    let meet = get(VcaKind::Meet);
    let teams = get(VcaKind::Teams);
    let zoom = get(VcaKind::Zoom);
    assert!(teams.1 > meet.1 && teams.1 > zoom.1, "Teams sends the most");
    assert!(meet.1 > meet.2, "Meet: simulcast up > single copy down");
    assert!(zoom.2 > zoom.1, "Zoom: server FEC makes down > up");
}

/// Table 1 row 3: "all VCAs take at least 20 seconds to recover from severe
/// uplink drops to 0.25 Mbps".
#[test]
fn severe_uplink_drops_recover_slowly() {
    let start = SimTime::from_secs(60);
    let len = SimDuration::from_secs(30);
    for kind in VcaKind::NATIVE {
        let out = vcabench::harness::run_two_party(
            kind,
            RateProfile::disruption(OPEN * 1e6, 0.25e6, start, len),
            RateProfile::constant_mbps(OPEN),
            SimDuration::from_secs(280),
            2,
        );
        let ttr = time_to_recovery(
            &out.up_series,
            SimDuration::from_millis(100),
            start,
            start + len,
        );
        let secs = ttr.ttr.expect("recovers within the call").as_secs_f64();
        assert!(
            secs >= 15.0,
            "{}: severe uplink recovery took only {secs}s",
            kind.name()
        );
    }
}

/// §4.2: downlink recovery — Teams slowest (its server is a dumb relay),
/// Meet and Zoom fast (server-side simulcast/SVC switching).
#[test]
fn downlink_recovery_ordering() {
    let start = SimTime::from_secs(60);
    let len = SimDuration::from_secs(30);
    let mut ttrs = Vec::new();
    for kind in VcaKind::NATIVE {
        let out = vcabench::harness::run_two_party(
            kind,
            RateProfile::constant_mbps(OPEN),
            RateProfile::disruption(OPEN * 1e6, 0.25e6, start, len),
            SimDuration::from_secs(280),
            2,
        );
        let ttr = time_to_recovery(
            &out.down_series,
            SimDuration::from_millis(100),
            start,
            start + len,
        );
        ttrs.push((kind, ttr.ttr.map(|d| d.as_secs_f64()).unwrap_or(190.0)));
    }
    let get = |k: VcaKind| ttrs.iter().find(|t| t.0 == k).unwrap().1;
    assert!(
        get(VcaKind::Teams) > get(VcaKind::Meet) && get(VcaKind::Teams) > get(VcaKind::Zoom),
        "Teams must be slowest on the downlink: {ttrs:?}"
    );
    assert!(
        get(VcaKind::Zoom) < 20.0,
        "Zoom's SVC switch is fast: {ttrs:?}"
    );
}

/// Table 1 row 4 (condensed): Zoom consumes well over half the link when a
/// Meet client competes with it; Teams is passive against TCP.
#[test]
fn competition_headlines() {
    // Zoom incumbent vs joining Meet on a 0.5 Mbps uplink.
    let cfg = CompetitionConfig::paper(VcaKind::Zoom, Competitor::Vca(VcaKind::Meet), 0.5, 99);
    let out = vcabench::harness::run_competition(&cfg);
    let share = out.up_share(SimTime::from_secs(40), SimTime::from_secs(110));
    assert!(share > 0.6, "Zoom vs Meet uplink share {share}");

    // Teams vs a bulk TCP download on 2 Mbps.
    let cfg = CompetitionConfig::paper(VcaKind::Teams, Competitor::IperfDown, 2.0, 7);
    let out = vcabench::harness::run_competition(&cfg);
    let share = out.down_share(SimTime::from_secs(60), SimTime::from_secs(150));
    assert!(share < 0.45, "Teams vs TCP downlink share {share}");
}

/// Table 1 row 5: pinning a user (speaker mode) raises that user's uplink.
/// Strongest at larger calls, where gallery tiles are small: at n=7 the
/// gallery senders are on reduced layers while a pinned sender pushes ~1
/// Mbps (Zoom/Meet) or more (Teams).
#[test]
fn pinning_raises_uplink() {
    for kind in VcaKind::NATIVE {
        let gallery =
            vcabench::harness::run_multiparty(kind, 7, false, SimDuration::from_secs(50), 7);
        let pinned =
            vcabench::harness::run_multiparty(kind, 7, true, SimDuration::from_secs(50), 7);
        assert!(
            pinned.c1_up_mbps > gallery.c1_up_mbps * 1.15,
            "{}: pinning must raise C1's uplink ({} -> {})",
            kind.name(),
            gallery.c1_up_mbps,
            pinned.c1_up_mbps
        );
    }
}

/// §6.1: more participants can *decrease* a participant's upstream
/// utilization (Zoom's n=5 layout cliff), while Teams stays flat.
#[test]
fn participant_count_cliffs() {
    let z4 =
        vcabench::harness::run_multiparty(VcaKind::Zoom, 4, false, SimDuration::from_secs(50), 7);
    let z5 =
        vcabench::harness::run_multiparty(VcaKind::Zoom, 5, false, SimDuration::from_secs(50), 7);
    assert!(
        z5.c1_up_mbps < z4.c1_up_mbps * 0.8,
        "Zoom n=5 uplink cliff: {} -> {}",
        z4.c1_up_mbps,
        z5.c1_up_mbps
    );
    let t2 =
        vcabench::harness::run_multiparty(VcaKind::Teams, 2, false, SimDuration::from_secs(50), 7);
    let t8 =
        vcabench::harness::run_multiparty(VcaKind::Teams, 8, false, SimDuration::from_secs(50), 7);
    assert!(
        (t8.c1_up_mbps - t2.c1_up_mbps).abs() < 0.35 * t2.c1_up_mbps,
        "Teams uplink flat across call sizes: {} vs {}",
        t2.c1_up_mbps,
        t8.c1_up_mbps
    );
}
