//! Cross-crate integration: the public API a downstream user builds with.
//!
//! Exercises custom topologies, custom agents alongside VCA calls, the
//! WebRTC-style stats API, and the shaping profile builders — everything a
//! user would touch when extending vcabench to a new scenario, without
//! reaching into crate internals.

use vcabench::netsim::{topology, FlowId};
use vcabench::prelude::*;

#[test]
fn custom_topology_with_mixed_traffic() {
    // Build the paper's competition topology by hand, attach a Teams call
    // and a Netflix stream, and watch the shared bottleneck.
    let mut rng = SimRng::seed_from_u64(1);
    let mut net: Network<Wire> = Network::new();
    let topo = topology::competition(
        &mut net,
        RateProfile::constant_mbps(3.0),
        RateProfile::constant_mbps(3.0),
    );
    let call = wire_call(
        &mut net,
        VcaKind::Teams,
        topo.vca_server,
        &[topo.c1, topo.c2],
        &[ViewMode::Gallery, ViewMode::Gallery],
        10,
        &mut rng,
    );
    net.set_agent(
        topo.f1,
        Box::new(vcabench::apps::NetflixClient::new(
            topo.f_server,
            FlowId(70),
            SimTime::from_secs(10),
            None,
        )),
    );
    net.set_agent(
        topo.f_server,
        Box::new(vcabench::apps::AbrServer::new(FlowId(71))),
    );
    net.run_until(SimTime::from_secs(60));

    assert_eq!(net.unrouted_drops, 0, "wiring must be complete");
    let down = net.link(topo.bottleneck_down);
    let call_bytes = down
        .traces
        .flow(call.down_flows[0])
        .map(|t| t.total_bytes())
        .unwrap_or(0);
    let netflix_bytes = down
        .traces
        .flow(FlowId(71))
        .map(|t| t.total_bytes())
        .unwrap_or(0);
    assert!(call_bytes > 1_000_000, "call media flowed: {call_bytes}");
    assert!(netflix_bytes > 1_000_000, "stream flowed: {netflix_bytes}");
    let nf: &vcabench::apps::NetflixClient = net.agent(topo.f1);
    assert!(nf.bytes_downloaded > 0);
}

#[test]
fn stats_api_matches_paper_fields() {
    let mut call = two_party_call(
        VcaKind::Meet,
        RateProfile::constant_mbps(OPEN),
        RateProfile::constant_mbps(0.5),
        3,
    );
    call.net.run_until(SimTime::from_secs(45));
    let c1: &VcaClient = call.net.agent(call.topo.c1);
    let samples = c1.stats.samples();
    assert!(
        samples.len() >= 40,
        "per-second sampling: {}",
        samples.len()
    );
    // The receiver-visible fields the paper reads from webrtc-internals.
    let late = &samples[samples.len() - 1];
    assert!(late.recv_fps > 0.0);
    assert!(late.recv_width > 0);
    assert!(late.recv_qp > 0.0);
    // Freeze accounting is monotone.
    for w in samples.windows(2) {
        assert!(w[1].freeze_time >= w[0].freeze_time);
        assert!(w[1].firs_sent >= w[0].firs_sent);
    }
}

const OPEN: f64 = 1000.0;

#[test]
fn rate_profiles_compose() {
    // A profile with a mid-call upgrade: 0.5 Mbps for a minute, then 2 Mbps.
    let profile = RateProfile::constant_mbps(0.5).step(SimTime::from_secs(60), 2e6);
    let out = vcabench::harness::run_two_party(
        VcaKind::Zoom,
        profile,
        RateProfile::constant_mbps(OPEN),
        SimDuration::from_secs(120),
        9,
    );
    let before = TwoPartyOutcome::rate_between(
        &out.up_series,
        SimTime::from_secs(30),
        SimTime::from_secs(60),
    );
    let after = TwoPartyOutcome::rate_between(
        &out.up_series,
        SimTime::from_secs(90),
        SimTime::from_secs(120),
    );
    assert!(before < 0.6, "capped phase: {before}");
    assert!(
        after > before + 0.15,
        "Zoom should use the upgrade: {before} -> {after}"
    );
}

#[test]
fn view_mode_changes_are_visible_to_the_server() {
    // Speaker mode from the start: the pinned sender ramps its uplink higher
    // than a gallery call of the same size.
    let modes_gallery = vec![ViewMode::Gallery; 4];
    let mut modes_pinned = vec![ViewMode::Speaker(0); 4];
    modes_pinned[0] = ViewMode::Gallery;

    let mut gallery = multiparty_call(VcaKind::Meet, 4, &modes_gallery, 5);
    gallery.net.run_until(SimTime::from_secs(45));
    let g_up = gallery
        .net
        .link(gallery.topo.uplinks[0])
        .traces
        .total()
        .rate_mbps_between(SimTime::from_secs(15), SimTime::from_secs(45));

    let mut pinned = multiparty_call(VcaKind::Meet, 4, &modes_pinned, 5);
    pinned.net.run_until(SimTime::from_secs(45));
    let p_up = pinned
        .net
        .link(pinned.topo.uplinks[0])
        .traces
        .total()
        .rate_mbps_between(SimTime::from_secs(15), SimTime::from_secs(45));

    assert!(
        p_up > g_up,
        "pinning raises the pinned sender's uplink: {g_up} vs {p_up}"
    );
}
