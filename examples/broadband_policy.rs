//! The policy question that motivated the paper: is the FCC's 25/3 Mbps
//! "broadband" definition enough for a household of video calls?
//!
//! §3's takeaway: "The FCC currently recommends a 25/3 Mbps minimum
//! connection. Such a connection may not suffice even for two simultaneous
//! video calls." The binding constraint is the 3 Mbps *uplink*. This example
//! stacks concurrent calls of each VCA onto a 3 Mbps shared uplink and
//! reports when quality collapses.
//!
//! ```text
//! cargo run --release --example broadband_policy
//! ```

use vcabench::netsim::{topology, LinkConfig, Network};
use vcabench::prelude::*;

/// Build `k` concurrent two-party calls whose C1-side clients share one
/// 3 Mbps uplink (the 25/3 household), each talking to its own server and
/// counter-party on the open side.
fn household(kind: VcaKind, k: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut net: Network<Wire> = Network::new();
    // Home side: k clients behind one switch and a 3/25 Mbps access link.
    let switch = net.add_node();
    let router = net.add_node();
    let lan = SimDuration::from_micros(200);
    let fast = LinkConfig::mbps(1000.0, lan).with_queue_bytes(1 << 20);
    let up = net.add_link(
        switch,
        router,
        LinkConfig::mbps(3.0, topology::ACCESS_DELAY)
            .with_queue_bytes(topology::ACCESS_QUEUE_BYTES),
    );
    let down = net.add_link(
        router,
        switch,
        LinkConfig::mbps(25.0, topology::ACCESS_DELAY)
            .with_queue_bytes(topology::ACCESS_QUEUE_BYTES),
    );
    net.default_route(switch, up);

    let mut calls = Vec::new();
    for i in 0..k {
        let c1 = net.add_node();
        let server = net.add_node();
        let c2 = net.add_node();
        let (c1_up, c1_down) = net.add_duplex(c1, switch, fast.clone(), fast.clone());
        let (wan_up, wan_down) = net.add_duplex(router, server, fast.clone(), fast.clone());
        let (c2_up, c2_down) = net.add_duplex(c2, server, fast.clone(), fast.clone());
        let _ = (c1_up, wan_up, c2_up);
        net.route(switch, c1, c1_down);
        net.route(router, server, wan_up);
        net.route(router, c1, down);
        net.route(router, c2, wan_up);
        net.default_route(c1, c1_up);
        net.default_route(c2, c2_up);
        net.route(server, c1, wan_down);
        net.route(server, c2, c2_down);
        let handles = wire_call(
            &mut net,
            kind,
            server,
            &[c1, c2],
            &[ViewMode::Gallery, ViewMode::Gallery],
            (10 + 10 * i) as u64,
            &mut rng,
        );
        calls.push((c2, handles));
    }
    net.run_until(SimTime::from_secs(90));
    // Quality proxy: fraction of the call each counter-party spent frozen
    // (the §3.2 freeze ratio).
    calls
        .iter()
        .map(|(c2, _)| {
            let c: &VcaClient = net.agent(*c2);
            c.primary_freeze()
                .map(|f| f.freeze_time.as_secs_f64() / 90.0)
                .unwrap_or(1.0)
        })
        .collect()
}

fn main() {
    println!("How many simultaneous calls fit a 25/3 'broadband' uplink?\n");
    println!("(freeze ratio at each call's far end; 0% is perfect, >10% is rough)\n");
    for kind in [VcaKind::Meet, VcaKind::Teams, VcaKind::Zoom] {
        println!("{}:", kind.name());
        for k in [1usize, 2, 3, 4] {
            let freezes = household(kind, k, 9);
            let rendered: Vec<String> = freezes
                .iter()
                .map(|f| format!("{:.0}%", f * 100.0))
                .collect();
            let worst = freezes.iter().cloned().fold(0.0f64, f64::max);
            let verdict = if worst <= 0.02 {
                "fine"
            } else if worst <= 0.10 {
                "degraded"
            } else {
                "unusable"
            };
            println!(
                "  {k} call(s): freeze = [{}]  → {verdict}",
                rendered.join(", ")
            );
        }
        println!();
    }
    println!("Paper §3.2: \"[a 25/3 connection] may not suffice even for two");
    println!("simultaneous video calls\" — Teams alone books ~1.8 Mbps of uplink.");
}
