//! Classroom scenario: the §6 modality study on a realistic workload.
//!
//! A remote class: one teacher and a growing number of students. Everyone
//! starts in gallery view; then the students pin the teacher (speaker mode).
//! The question city officials asked the authors — "how much uplink does a
//! household need for school?" — comes down to exactly these numbers.
//!
//! ```text
//! cargo run --release --example classroom
//! ```

use vcabench::prelude::*;

fn main() {
    println!("Remote-classroom bandwidth study (teacher = client 0)\n");
    for kind in [VcaKind::Meet, VcaKind::Teams, VcaKind::Zoom] {
        println!("{} classroom:", kind.name());
        println!(
            "{:>9} {:>16} {:>16} {:>18}",
            "students", "teacher up", "teacher down", "teacher up (pinned)"
        );
        for students in [1usize, 3, 5, 7] {
            let n = students + 1;
            // Gallery mode first.
            let gallery = run_multiparty(kind, n, false, SimDuration::from_secs(60), 7);
            // Then the students pin the teacher.
            let pinned = run_multiparty(kind, n, true, SimDuration::from_secs(60), 7);
            println!(
                "{:>9} {:>13.2} M {:>13.2} M {:>15.2} M",
                students, gallery.c1_up_mbps, gallery.c1_down_mbps, pinned.c1_up_mbps
            );
        }
        println!();
    }
    println!("The paper's §6 findings to look for:");
    println!(" * Zoom's teacher uplink drops when the class grows past 4 (smaller tiles),");
    println!("   Meet's past 6; Teams never changes (fixed 2x2 layout).");
    println!(" * Pinning the teacher raises *her* uplink: ~1 Mbps for Zoom/Meet at any");
    println!("   class size, but growing with class size for Teams (its §6.2 anomaly).");
}
