//! Disruption and recovery: the §4 experiment as a visual timeline.
//!
//! A five-minute call; at t=60 s the uplink collapses to 0.25 Mbps for 30
//! seconds. The ASCII strip chart shows each VCA's recovery personality:
//! Teams' slow-then-fast climb, Zoom's stepwise probe ladder overshooting
//! its nominal rate, Meet's steady return.
//!
//! ```text
//! cargo run --release --example disruption_recovery
//! ```

use vcabench::prelude::*;
use vcabench::stats::time_to_recovery;

fn main() {
    let start = SimTime::from_secs(60);
    let length = SimDuration::from_secs(30);
    println!("30 s uplink disruption to 0.25 Mbps at t=60 s (each char = 2 s, rows to 2.2 Mbps)\n");
    for kind in [VcaKind::Meet, VcaKind::Teams, VcaKind::Zoom] {
        let up = RateProfile::disruption(1000e6, 0.25e6, start, length);
        let out = run_two_party(
            kind,
            up,
            RateProfile::constant_mbps(1000.0),
            SimDuration::from_secs(300),
            2,
        );
        // Downsample the 100 ms series to 2 s buckets.
        let buckets: Vec<f64> = out
            .up_series
            .chunks(20)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        let ttr = time_to_recovery(
            &out.up_series,
            SimDuration::from_millis(100),
            start,
            start + length,
        );
        println!(
            "{} — nominal {:.2} Mbps, time to recovery {}",
            kind.name(),
            ttr.nominal_mbps,
            ttr.ttr
                .map(|d| format!("{:.1} s", d.as_secs_f64()))
                .unwrap_or_else(|| "not within call".into())
        );
        // 6 rows, top = 2.2 Mbps.
        let rows = 6;
        let top = 2.2;
        for row in (0..rows).rev() {
            let lo = top * row as f64 / rows as f64;
            let line: String = buckets
                .iter()
                .map(|&v| if v > lo { '█' } else { ' ' })
                .collect();
            println!("{lo:>5.1} |{line}");
        }
        let marker: String = (0..buckets.len())
            .map(|i| {
                let t = i as f64 * 2.0;
                if (60.0..90.0).contains(&t) {
                    'x'
                } else {
                    '-'
                }
            })
            .collect();
        println!("      +{marker}  (x = shaped window)\n");
    }
    println!("Paper shapes: every VCA needs >20 s to recover from the 0.25 Mbps drop;");
    println!("Zoom keeps climbing past its nominal rate (probe ladder) before settling.");
}
