//! Home-network competition: the §5 story on one shared access link.
//!
//! A work call is running; someone else in the household starts a large
//! upload (iPerf3-like), a Netflix stream, or a second video call. Who
//! wins, and by how much?
//!
//! ```text
//! cargo run --release --example home_competition
//! ```

use vcabench::prelude::*;

fn share(a: f64, b: f64) -> f64 {
    if a + b == 0.0 {
        0.0
    } else {
        a / (a + b)
    }
}

fn main() {
    println!("Shared 2 Mbps home link: an ongoing call vs a second application\n");
    println!(
        "{:<8} {:<14} {:>12} {:>12} {:>8}",
        "call", "competitor", "call Mbps", "comp Mbps", "share"
    );
    for incumbent in [VcaKind::Meet, VcaKind::Teams, VcaKind::Zoom] {
        for (competitor, label) in [
            (Competitor::IperfDown, "download"),
            (Competitor::Netflix, "netflix"),
            (Competitor::Youtube, "youtube"),
            (Competitor::Vca(VcaKind::Zoom), "zoom call"),
        ] {
            let cfg = CompetitionConfig::paper(incumbent, competitor, 2.0, 5);
            let out = run_competition(&cfg);
            let from = SimTime::from_secs(60);
            let to = SimTime::from_secs(150);
            let call_rate = TwoPartyOutcome::rate_between(&out.inc_down, from, to);
            let comp_rate = TwoPartyOutcome::rate_between(&out.comp_down, from, to);
            println!(
                "{:<8} {:<14} {:>12.2} {:>12.2} {:>7.0}%",
                incumbent.name(),
                label,
                call_rate,
                comp_rate,
                100.0 * share(call_rate, comp_rate)
            );
        }
    }
    println!("\n(downlink direction; competitor runs from t=30 s to t=150 s)");
    println!("Shapes from the paper: Teams is passive and cedes the link to TCP-like");
    println!("traffic; Zoom holds its nominal rate against everything; Meet sits");
    println!("in between. A 25/3 'broadband' link is not generous once two of");
    println!("these run side by side.");
}
