//! Campaign example: author a sweep as data, run it in parallel with the
//! content-addressed result cache, and re-run to show every run cached.
//!
//! ```text
//! cargo run --release --example campaign
//! ```
//!
//! The same campaign can be written as a JSON file and driven without any
//! Rust at all: see `examples/specs/smoke.json` and
//! `repro campaign examples/specs/smoke.json --jobs 4`.

use vcabench::prelude::*;

fn main() {
    // A Fig-1-style mini sweep: two applications, two uplink caps, one seed,
    // 30-second calls. Everything defaultable is left out — the spec layer
    // normalizes before hashing, so equivalent authorings share cache slots.
    let campaign = CampaignSpec {
        name: "example-sweep".to_string(),
        scenarios: vec![ScenarioTemplate {
            label: Some("uplink".to_string()),
            base: ScenarioSpec::TwoParty(TwoPartySpec {
                kind: VcaKind::Zoom,
                up: RateProfile::constant_mbps(1000.0),
                down: RateProfile::constant_mbps(1000.0),
                duration_secs: 30.0,
                seed: 7,
                knobs: None,
            }),
            axes: Some(Axes {
                kinds: Some(vec![VcaKind::Meet, VcaKind::Zoom]),
                up_mbps: Some(vec![0.5, 1.0]),
                down_mbps: None,
                capacity_mbps: None,
                competitors: None,
                seeds: Some(SeedAxis::List(vec![7])),
            }),
        }],
    };

    // The spec is plain data — this JSON is exactly what a spec file holds.
    println!("campaign spec:\n{}\n", campaign.to_json());

    let dir = std::env::temp_dir().join("vcabench-campaign-example");
    let _ = std::fs::remove_dir_all(&dir);

    for pass in ["first pass (computes)", "second pass (all cached)"] {
        let summary = run_campaign_cached(&campaign, 4, &dir, false).expect("campaign runs");
        println!(
            "{pass}: {} runs, {} computed, {} cached -> {}",
            summary.total,
            summary.computed,
            summary.cached,
            summary.store_path.display()
        );
        for record in &summary.results {
            println!("  {} {}", &record.hash[..12], record.label);
        }
        println!();
    }

    let _ = std::fs::remove_dir_all(&dir);
}
