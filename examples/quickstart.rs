//! Quickstart: run one simulated two-party call per VCA on a shaped uplink
//! and print what each application made of it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vcabench::prelude::*;

fn main() {
    println!("vcabench quickstart — 90 s two-party calls, 1 Mbps uplink cap on C1\n");
    println!(
        "{:<14} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "VCA", "sent Mbps", "recv Mbps", "width", "fps", "frames"
    );
    for kind in [
        VcaKind::Meet,
        VcaKind::Teams,
        VcaKind::TeamsChrome,
        VcaKind::Zoom,
        VcaKind::ZoomChrome,
    ] {
        let mut call = two_party_call(
            kind,
            RateProfile::constant_mbps(1.0),    // shaped uplink
            RateProfile::constant_mbps(1000.0), // open downlink
            42,
        );
        call.net.run_until(SimTime::from_secs(90));

        let t0 = SimTime::from_secs(30);
        let t1 = SimTime::from_secs(90);
        let sent = call
            .net
            .link(call.topo.c1_up)
            .traces
            .total()
            .rate_mbps_between(t0, t1);
        let recv = call
            .net
            .link(call.topo.c1_down)
            .traces
            .total()
            .rate_mbps_between(t0, t1);
        let c1: &VcaClient = call.net.agent(call.topo.c1);
        let last = c1.stats.samples().last().expect("stats sampled");
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>9} {:>9.0} {:>8}",
            kind.name(),
            sent,
            recv,
            last.send_width,
            last.send_fps,
            c1.frames_decoded_from(1),
        );
    }
    println!("\nColumns: what C1 sent/received on its access link over the last minute,");
    println!("the resolution/frame rate its encoder settled on, and frames decoded from C2.");
    println!("Compare with the paper: on a 1 Mbps uplink Teams-native used ~0.84 Mbps,");
    println!("Teams-Chrome only ~0.61; Meet and Zoom sat below their ~1 Mbps nominals.");
}
